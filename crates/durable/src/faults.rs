//! Deterministic fault injection for the durable and serving layers.
//!
//! Robustness claims are only as good as the failures they were tested
//! against, and real I/O failures (a full disk, a dying device, a
//! half-written frame) are rare and unreproducible.  This module turns
//! them into *scheduled events*: a [`FaultPlan`] names, per fault site,
//! exactly which occurrence(s) of the operation should fail, so a test
//! can say "the 3rd fsync fails, twice" and replay that history every
//! run.  The plan is threaded through [`Wal`](crate::Wal) /
//! [`DurableStore`](crate::DurableStore) /
//! [`Checkpoint`](crate::Checkpoint) and (in `magic-serve`) the accept
//! loop; with no plan installed every hook compiles down to an `Option`
//! check that is never taken.
//!
//! # Spec grammar
//!
//! A plan parses from a comma- or semicolon-separated list of clauses
//! (the `MAGIC_FAULTS` environment variable uses the same grammar):
//!
//! ```text
//! <site>=<from>[x<count>][:<millis>]
//! ```
//!
//! meaning: starting at the `<from>`-th operation at `<site>`
//! (1-based), the next `<count>` operations (default 1) are hit;
//! `<millis>` parameterizes stall sites.  Sites:
//!
//! | site               | counter    | effect when hit                         |
//! |--------------------|------------|-----------------------------------------|
//! | `wal-fsync-fail`   | fsyncs     | the fsync returns an injected I/O error |
//! | `wal-torn`         | appends    | half the frame is written, then an error |
//! | `wal-stall`        | appends    | the append sleeps `<millis>` ms first    |
//! | `ckpt-rename-fail` | renames    | the checkpoint rename returns an error   |
//! | `conn-stall`       | accepts    | the connection sleeps `<millis>` ms before serving |
//! | `conn-drop`        | accepts    | the connection is closed unserved        |
//!
//! Example: `wal-fsync-fail=3x2,conn-drop=1` — the 3rd and 4th fsyncs
//! fail, and the first accepted connection is dropped on the floor.
//!
//! Counters are per-plan atomics, so a plan shared between a `Wal` and
//! an accept loop keeps one deterministic history per site.  "Seeded"
//! plans come from `magic_workloads::chaos`, which derives spec strings
//! from a `SplitMix64` seed; the plan itself is deterministic by
//! construction and needs no randomness.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The name of the environment variable [`FaultPlan::from_env`] reads.
pub const MAGIC_FAULTS_ENV: &str = "MAGIC_FAULTS";

/// What kind of failure a clause injects (see the module docs table).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultKind {
    FsyncFail,
    TornAppend,
    AppendStall,
    CkptRenameFail,
    ConnStall,
    ConnDrop,
}

impl FaultKind {
    fn parse(name: &str) -> Option<FaultKind> {
        match name {
            "wal-fsync-fail" => Some(FaultKind::FsyncFail),
            "wal-torn" => Some(FaultKind::TornAppend),
            "wal-stall" => Some(FaultKind::AppendStall),
            "ckpt-rename-fail" => Some(FaultKind::CkptRenameFail),
            "conn-stall" => Some(FaultKind::ConnStall),
            "conn-drop" => Some(FaultKind::ConnDrop),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            FaultKind::FsyncFail => "wal-fsync-fail",
            FaultKind::TornAppend => "wal-torn",
            FaultKind::AppendStall => "wal-stall",
            FaultKind::CkptRenameFail => "ckpt-rename-fail",
            FaultKind::ConnStall => "conn-stall",
            FaultKind::ConnDrop => "conn-drop",
        }
    }
}

/// One parsed clause: hit occurrences `from .. from + count` (1-based,
/// half-open) of the site's counter.
#[derive(Clone, Debug)]
struct FaultRule {
    kind: FaultKind,
    from: u64,
    count: u64,
    millis: u64,
}

impl FaultRule {
    fn hits(&self, n: u64) -> bool {
        n >= self.from && n < self.from + self.count
    }
}

/// What [`FaultPlan::on_append`] tells the WAL to do.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppendFault {
    /// Write only half the frame, then report an injected error.
    pub torn: bool,
    /// Sleep this long before writing (simulates a wedged device).
    pub stall: Option<Duration>,
}

/// What [`FaultPlan::on_connection`] tells the accept loop to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnFault {
    /// Serve normally.
    None,
    /// Sleep this long before serving the connection.
    Stall(Duration),
    /// Close the connection without serving it.
    Drop,
}

/// A deterministic schedule of injected failures (see module docs).
///
/// Cloning is cheap only through [`Arc`]; the plan's counters are the
/// identity of the schedule, so share one instance per process.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    fsyncs: AtomicU64,
    appends: AtomicU64,
    renames: AtomicU64,
    accepts: AtomicU64,
}

impl FaultPlan {
    /// Parse a plan from the spec grammar in the module docs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for clause in spec.split([',', ';']) {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, sched) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?} is missing `=`"))?;
            let kind = FaultKind::parse(name.trim())
                .ok_or_else(|| format!("unknown fault site {:?}", name.trim()))?;
            let (sched, millis) = match sched.split_once(':') {
                Some((s, ms)) => (
                    s,
                    ms.parse::<u64>()
                        .map_err(|_| format!("bad millis in fault clause {clause:?}"))?,
                ),
                None => (sched, 0),
            };
            let (from, count) = match sched.split_once('x') {
                Some((f, c)) => (
                    f.parse::<u64>()
                        .map_err(|_| format!("bad occurrence in fault clause {clause:?}"))?,
                    c.parse::<u64>()
                        .map_err(|_| format!("bad count in fault clause {clause:?}"))?,
                ),
                None => (
                    sched
                        .parse::<u64>()
                        .map_err(|_| format!("bad occurrence in fault clause {clause:?}"))?,
                    1,
                ),
            };
            if from == 0 {
                return Err(format!(
                    "fault clause {clause:?}: occurrences are 1-based (got 0)"
                ));
            }
            if matches!(kind, FaultKind::AppendStall | FaultKind::ConnStall) && millis == 0 {
                return Err(format!(
                    "fault clause {clause:?}: stall sites need `:<millis>`"
                ));
            }
            rules.push(FaultRule {
                kind,
                from,
                count,
                millis,
            });
        }
        Ok(FaultPlan {
            rules,
            ..FaultPlan::default()
        })
    }

    /// The plan named by the `MAGIC_FAULTS` environment variable, if
    /// set and non-empty.  A malformed spec is a hard error (panic):
    /// silently ignoring a chaos schedule would turn a fault-injection
    /// run into a green happy-path run.
    pub fn from_env() -> Option<Arc<FaultPlan>> {
        let spec = std::env::var(MAGIC_FAULTS_ENV).ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        Some(Arc::new(FaultPlan::parse(&spec).unwrap_or_else(|e| {
            panic!("bad {MAGIC_FAULTS_ENV} spec {spec:?}: {e}")
        })))
    }

    /// True iff the plan injects nothing (no clauses).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    fn hit(&self, kind: FaultKind, n: u64) -> Option<&FaultRule> {
        self.rules.iter().find(|r| r.kind == kind && r.hits(n))
    }

    /// Count one fsync; `Err` if the plan fails this occurrence.
    pub fn on_fsync(&self) -> io::Result<()> {
        let n = self.fsyncs.fetch_add(1, Ordering::Relaxed) + 1;
        match self.hit(FaultKind::FsyncFail, n) {
            Some(_) => Err(injected(format!("injected fsync failure (fsync #{n})"))),
            None => Ok(()),
        }
    }

    /// Count one WAL frame append and report what to do with it.
    pub fn on_append(&self) -> AppendFault {
        let n = self.appends.fetch_add(1, Ordering::Relaxed) + 1;
        AppendFault {
            torn: self.hit(FaultKind::TornAppend, n).is_some(),
            stall: self
                .hit(FaultKind::AppendStall, n)
                .map(|r| Duration::from_millis(r.millis)),
        }
    }

    /// Count one checkpoint rename; `Err` if the plan fails it.
    pub fn on_checkpoint_rename(&self) -> io::Result<()> {
        let n = self.renames.fetch_add(1, Ordering::Relaxed) + 1;
        match self.hit(FaultKind::CkptRenameFail, n) {
            Some(_) => Err(injected(format!(
                "injected checkpoint rename failure (rename #{n})"
            ))),
            None => Ok(()),
        }
    }

    /// Count one accepted connection and report what to do with it.
    /// `Drop` wins over `Stall` when both clauses hit the same
    /// occurrence.
    pub fn on_connection(&self) -> ConnFault {
        let n = self.accepts.fetch_add(1, Ordering::Relaxed) + 1;
        if self.hit(FaultKind::ConnDrop, n).is_some() {
            return ConnFault::Drop;
        }
        match self.hit(FaultKind::ConnStall, n) {
            Some(r) => ConnFault::Stall(Duration::from_millis(r.millis)),
            None => ConnFault::None,
        }
    }
}

impl fmt::Display for FaultPlan {
    /// Render back to the spec grammar (counters are not part of the
    /// spec, so a round trip restarts the schedule from occurrence 1).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{}={}", r.kind.name(), r.from)?;
            if r.count != 1 {
                write!(f, "x{}", r.count)?;
            }
            if r.millis != 0 {
                write!(f, ":{}", r.millis)?;
            }
        }
        Ok(())
    }
}

/// The error every injected failure carries: `Other`, with a message
/// prefixed `injected` so logs and tests can tell scheduled chaos from
/// a genuinely failing environment.
fn injected(msg: String) -> io::Error {
    io::Error::other(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_and_schedules_deterministically() {
        let plan = FaultPlan::parse("wal-fsync-fail=3x2, conn-drop=1; wal-stall=2:150").unwrap();
        assert_eq!(
            plan.to_string(),
            "wal-fsync-fail=3x2,conn-drop=1,wal-stall=2:150"
        );
        // fsyncs 1, 2 pass; 3 and 4 fail; 5 passes.
        assert!(plan.on_fsync().is_ok());
        assert!(plan.on_fsync().is_ok());
        assert!(plan.on_fsync().is_err());
        assert!(plan.on_fsync().is_err());
        assert!(plan.on_fsync().is_ok());
        // First connection drops, second is clean.
        assert_eq!(plan.on_connection(), ConnFault::Drop);
        assert_eq!(plan.on_connection(), ConnFault::None);
        // Append 1 clean, append 2 stalls 150ms, append 3 clean.
        assert_eq!(plan.on_append(), AppendFault::default());
        assert_eq!(plan.on_append().stall, Some(Duration::from_millis(150)));
        assert_eq!(plan.on_append(), AppendFault::default());
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultPlan::parse("wal-fsync-fail").is_err()); // no `=`
        assert!(FaultPlan::parse("no-such-site=1").is_err());
        assert!(FaultPlan::parse("wal-fsync-fail=0").is_err()); // 1-based
        assert!(FaultPlan::parse("wal-fsync-fail=x2").is_err());
        assert!(FaultPlan::parse("wal-stall=1").is_err()); // stall needs ms
        assert!(FaultPlan::parse("conn-stall=1").is_err());
        let empty = FaultPlan::parse("  ").unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn torn_and_stall_share_the_append_counter() {
        let plan = FaultPlan::parse("wal-torn=2,wal-stall=2:30").unwrap();
        assert_eq!(plan.on_append(), AppendFault::default());
        let second = plan.on_append();
        assert!(second.torn);
        assert_eq!(second.stall, Some(Duration::from_millis(30)));
    }
}
