//! B6: the compile-time cost of each rewriting algorithm on the Appendix's
//! four benchmark programs (adornment included).  All rewrites are
//! compile-time transformations, so this is the overhead a query optimizer
//! would pay per query form.

use magic_bench::harness::{BenchmarkId, Criterion};
use magic_bench::{criterion_group, criterion_main};
use magic_core::planner::{Planner, Strategy};
use magic_datalog::{Program, Query};
use magic_workloads::{list_term, programs};

fn problems() -> Vec<(&'static str, Program, Query)> {
    vec![
        (
            "ancestor",
            programs::ancestor(),
            programs::ancestor_query("john"),
        ),
        (
            "same_generation",
            programs::same_generation(),
            programs::same_generation_query("john"),
        ),
        (
            "nested_sg",
            programs::nested_same_generation(),
            programs::nested_sg_query("john"),
        ),
        (
            "reverse",
            programs::list_reverse(),
            programs::reverse_query(list_term(3)),
        ),
    ]
}

fn bench_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite");
    for (name, program, query) in problems() {
        for strategy in Strategy::REWRITES {
            group.bench_with_input(
                BenchmarkId::new(strategy.short_name(), name),
                &name,
                |b, _| {
                    b.iter(|| {
                        // The counting rewrites may be inapplicable to some
                        // program/sip combinations; that cheap failure path
                        // is part of what an optimizer would measure.
                        let _ = Planner::new(strategy).rewrite(&program, &query);
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rewrite);
criterion_main!(benches);
