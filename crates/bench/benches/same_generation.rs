//! B2: the nonlinear same-generation program (Example 1) over layered
//! `up`/`flat`/`down` grids — the paper's running example and the case the
//! original (PODS'86) magic sets could not handle.

use magic_bench::harness::{BenchmarkId, Criterion};
use magic_bench::same_generation;
use magic_bench::{criterion_group, criterion_main};
use magic_core::planner::Strategy;

fn bench_same_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("same_generation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (depth, width) in [(3usize, 8usize)] {
        let scenario = same_generation(depth, width);
        for strategy in [
            Strategy::SemiNaiveBottomUp,
            Strategy::MagicSets,
            Strategy::SupplementaryMagicSets,
            Strategy::Counting,
            Strategy::SupplementaryCounting,
        ] {
            group.bench_with_input(
                BenchmarkId::new(strategy.short_name(), format!("{depth}x{width}")),
                &(depth, width),
                |b, _| b.iter(|| scenario.run(strategy).expect("evaluation succeeds")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_same_generation);
criterion_main!(benches);
