//! B5: counting versus magic sets.  Section 11 argues counting pays off only
//! when each fact has a unique derivation (tree-shaped data) and the
//! semijoin optimization applies; on data with shared derivations (DAGs) the
//! index fields multiply the number of stored facts.

use magic_bench::harness::{BenchmarkId, Criterion};
use magic_bench::Scenario;
use magic_bench::{criterion_group, criterion_main};
use magic_core::planner::Strategy;
use magic_workloads::{binary_tree, programs, random_dag};

fn tree_scenario(depth: usize) -> Scenario {
    Scenario::new(
        format!("tree{depth}"),
        programs::ancestor(),
        programs::ancestor_query("n0"),
        binary_tree(depth),
    )
}

fn dag_scenario(nodes: usize, edges: usize) -> Scenario {
    Scenario::new(
        format!("dag{nodes}"),
        programs::ancestor(),
        programs::ancestor_query("n0"),
        random_dag(nodes, edges, 42),
    )
}

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting_vs_magic");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let scenarios = vec![tree_scenario(9), dag_scenario(64, 128)];
    for scenario in &scenarios {
        for strategy in [
            Strategy::MagicSets,
            Strategy::SupplementaryMagicSets,
            Strategy::Counting,
            Strategy::CountingSemijoin,
            Strategy::SupplementaryCountingSemijoin,
        ] {
            group.bench_with_input(
                BenchmarkId::new(strategy.short_name(), &scenario.name),
                &scenario.name,
                |b, _| b.iter(|| scenario.run(strategy).expect("evaluation succeeds")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_counting);
criterion_main!(benches);
