//! E10: full versus partial sips (Example 1's sips (IV) and (V),
//! Lemma 9.3).  The fuller sip never computes more facts; this bench
//! measures whether that translates into wall-clock wins on the
//! same-generation workload.

use magic_bench::harness::{BenchmarkId, Criterion};
use magic_bench::{criterion_group, criterion_main};
use magic_core::planner::{Planner, Strategy};
use magic_core::sip_builder::SipStrategy;
use magic_workloads::{programs, same_generation_grid, SgConfig};

fn bench_sips(c: &mut Criterion) {
    let mut group = c.benchmark_group("sip_comparison");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let program = programs::same_generation();
    let query = programs::same_generation_query("l0c0");
    for (depth, width) in [(3usize, 8usize)] {
        let db = same_generation_grid(SgConfig {
            depth,
            width,
            flat_everywhere: true,
        });
        for (label, sip) in [
            ("full", SipStrategy::FullLeftToRight),
            ("partial", SipStrategy::LeftToRightLastOnly),
        ] {
            for strategy in [Strategy::MagicSets, Strategy::SupplementaryMagicSets] {
                group.bench_with_input(
                    BenchmarkId::new(
                        format!("{}-{label}", strategy.short_name()),
                        format!("{depth}x{width}"),
                    ),
                    &(depth, width),
                    |b, _| {
                        b.iter(|| {
                            Planner::new(strategy)
                                .with_sip(sip)
                                .evaluate(&program, &query, &db)
                                .expect("evaluation succeeds")
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sips);
criterion_main!(benches);
