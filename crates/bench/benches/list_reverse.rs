//! B4: list reverse (Appendix problem 4) — a program with function symbols.
//! The unrewritten program is not range-restricted, so only the rewrites are
//! measured; their safety is guaranteed by Theorem 10.1 (positive
//! binding-graph cycles).

use magic_bench::harness::{BenchmarkId, Criterion};
use magic_bench::list_reverse;
use magic_bench::{criterion_group, criterion_main};
use magic_core::planner::Strategy;

fn bench_list_reverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_reverse");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [8usize, 24] {
        let scenario = list_reverse(n);
        for strategy in [
            Strategy::MagicSets,
            Strategy::SupplementaryMagicSets,
            Strategy::Counting,
            Strategy::SupplementaryCounting,
        ] {
            group.bench_with_input(BenchmarkId::new(strategy.short_name(), n), &n, |b, _| {
                b.iter(|| scenario.run(strategy).expect("evaluation succeeds"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_list_reverse);
criterion_main!(benches);
