//! B3: the nested same-generation program (Appendix problem 3), which
//! exercises adornment propagation across two mutually dependent recursive
//! predicates.

use magic_bench::harness::{BenchmarkId, Criterion};
use magic_bench::nested_same_generation;
use magic_bench::{criterion_group, criterion_main};
use magic_core::planner::Strategy;

fn bench_nested_sg(c: &mut Criterion) {
    let mut group = c.benchmark_group("nested_sg");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (depth, width) in [(3usize, 8usize)] {
        let scenario = nested_same_generation(depth, width);
        // The counting strategies diverge on this workload (the per-level
        // same-generation relation is cyclic), so only the baselines and the
        // magic-set strategies are compared.
        for strategy in [
            Strategy::SemiNaiveBottomUp,
            Strategy::MagicSets,
            Strategy::SupplementaryMagicSets,
        ] {
            group.bench_with_input(
                BenchmarkId::new(strategy.short_name(), format!("{depth}x{width}")),
                &(depth, width),
                |b, _| b.iter(|| scenario.run(strategy).expect("evaluation succeeds")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_nested_sg);
criterion_main!(benches);
