//! B1: wall-clock comparison of the evaluation strategies on the ancestor
//! program (Appendix problem 1) over chains and binary trees, reproducing
//! the Section 1 motivation: the rewrites beat the bottom-up baselines on
//! bound queries, increasingly so as the data grows.

use magic_bench::harness::{BenchmarkId, Criterion};
use magic_bench::{ancestor_chain, ancestor_tree};
use magic_bench::{criterion_group, criterion_main};
use magic_core::planner::Strategy;

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::NaiveBottomUp,
        Strategy::SemiNaiveBottomUp,
        Strategy::MagicSets,
        Strategy::SupplementaryMagicSets,
        Strategy::Counting,
        Strategy::SupplementaryCounting,
    ]
}

fn bench_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("ancestor_chain");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [16usize, 56] {
        let scenario = ancestor_chain(n);
        for strategy in strategies() {
            group.bench_with_input(BenchmarkId::new(strategy.short_name(), n), &n, |b, _| {
                b.iter(|| scenario.run(strategy).expect("evaluation succeeds"))
            });
        }
    }
    group.finish();
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("ancestor_tree");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for depth in [8usize] {
        let scenario = ancestor_tree(depth);
        for strategy in strategies() {
            group.bench_with_input(
                BenchmarkId::new(strategy.short_name(), depth),
                &depth,
                |b, _| b.iter(|| scenario.run(strategy).expect("evaluation succeeds")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_chain, bench_tree);
criterion_main!(benches);
