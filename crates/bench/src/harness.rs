//! A minimal, dependency-free stand-in for the `criterion` benchmark API.
//!
//! The build environment has no access to crates.io, so the Criterion
//! benches under `benches/` run on this shim instead.  It implements just
//! the slice of the `criterion` 0.5 surface those benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] configuration,
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the `criterion_group!`/`criterion_main!` macros — with honest
//! warm-up + timed-sample measurement and a median/min/max report on
//! stdout.  Swapping the real crate back in is a one-line import change in
//! each bench file.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver handed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// A fresh driver.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Start a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Parse `--bench`-style CLI arguments.  The shim accepts and ignores
    /// whatever the cargo bench runner passes.
    pub fn configure_from_args(self) -> Criterion {
        self
    }
}

/// A named benchmark id: function name plus parameter, printed `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A group of measurements sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to run the body untimed before sampling.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Target total time across the timed samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Measure `routine` against `input` and print a one-line report.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        routine(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
    }

    /// Measure a parameterless routine.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        routine(&mut bencher);
        bencher.report(&self.name, &id.to_string());
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Collects timed samples of a closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Run `body` repeatedly: first untimed until the warm-up budget is
    /// spent, then `sample_size` timed samples (stopping early if the
    /// measurement budget runs out, but always taking at least one).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            std_black_box(body());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let measure_deadline = Instant::now() + self.measurement_time;
        for i in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(body());
            self.samples.push(start.elapsed());
            if i > 0 && Instant::now() >= measure_deadline {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (bencher.iter never called)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "{group}/{id}: median {:?} (min {:?}, max {:?}, {} samples)",
            median,
            sorted[0],
            sorted[sorted.len() - 1],
            sorted.len()
        );
    }
}

/// Register benchmark functions under a group name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::new().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the registered groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut ran = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &5usize, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<usize>()
            })
        });
        group.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("gms", 64).to_string(), "gms/64");
    }
}
