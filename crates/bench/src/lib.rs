//! # magic-bench
//!
//! The benchmark harness for the *Power of Magic* reproduction.
//!
//! * The Criterion benches under `benches/` compare the evaluation
//!   strategies (naive, semi-naive, GMS, GSMS, GC, GSC, ± semijoin) on the
//!   paper's four benchmark problems over synthetic workloads.
//! * `src/bin/appendix.rs` regenerates the paper's symbolic artifacts: the
//!   adorned rule sets (Appendix A.2) and the rewritten rule sets of every
//!   method (A.3–A.6).
//! * `src/bin/fact_counts.rs` regenerates the fact-count accounting that
//!   backs the paper's qualitative claims (Sections 1, 9 and 11).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;

use magic_core::planner::{PlanResult, Planner, Strategy};
use magic_datalog::{Program, Query};
use magic_storage::Database;

/// A named scenario: a program, a query and an extensional database.
pub struct Scenario {
    /// Human-readable name (used in bench ids and report rows).
    pub name: String,
    /// The program.
    pub program: Program,
    /// The query.
    pub query: Query,
    /// The data.
    pub database: Database,
}

impl Scenario {
    /// Construct a scenario.
    pub fn new(
        name: impl Into<String>,
        program: Program,
        query: Query,
        database: Database,
    ) -> Self {
        Scenario {
            name: name.into(),
            program,
            query,
            database,
        }
    }

    /// Evaluate the scenario under a strategy.
    pub fn run(&self, strategy: Strategy) -> Result<PlanResult, magic_core::planner::PlanError> {
        Planner::new(strategy).evaluate(&self.program, &self.query, &self.database)
    }
}

/// The ancestor-on-a-chain scenario of Section 1.
pub fn ancestor_chain(n: usize) -> Scenario {
    Scenario::new(
        format!("ancestor/chain/{n}"),
        magic_workloads::programs::ancestor(),
        magic_workloads::programs::ancestor_query("n0"),
        magic_workloads::chain(n),
    )
}

/// The ancestor-on-a-binary-tree scenario.
pub fn ancestor_tree(depth: usize) -> Scenario {
    Scenario::new(
        format!("ancestor/tree/{depth}"),
        magic_workloads::programs::ancestor(),
        magic_workloads::programs::ancestor_query("n0"),
        magic_workloads::binary_tree(depth),
    )
}

/// The nonlinear same-generation scenario over a layered grid.
pub fn same_generation(depth: usize, width: usize) -> Scenario {
    let cfg = magic_workloads::SgConfig {
        depth,
        width,
        flat_everywhere: true,
    };
    Scenario::new(
        format!("same_generation/{depth}x{width}"),
        magic_workloads::programs::same_generation(),
        magic_workloads::programs::same_generation_query("l0c0"),
        magic_workloads::same_generation_grid(cfg),
    )
}

/// The nested same-generation scenario of Appendix problem (3).
pub fn nested_same_generation(depth: usize, width: usize) -> Scenario {
    let cfg = magic_workloads::SgConfig {
        depth,
        width,
        flat_everywhere: true,
    };
    let mut db = magic_workloads::same_generation_grid(cfg);
    magic_workloads::nested_sg_extras(cfg, &mut db);
    Scenario::new(
        format!("nested_sg/{depth}x{width}"),
        magic_workloads::programs::nested_same_generation(),
        magic_workloads::programs::nested_sg_query("l0c0"),
        db,
    )
}

/// The list-reverse scenario of Appendix problem (4).
pub fn list_reverse(n: usize) -> Scenario {
    Scenario::new(
        format!("reverse/{n}"),
        magic_workloads::programs::list_reverse(),
        magic_workloads::programs::reverse_query(magic_workloads::list_term(n)),
        magic_workloads::reverse_database(),
    )
}

/// The stratified win/lose game over a random `n`-position graph with
/// roughly `moves` moves: all winning positions, `win(X)?`.  The program
/// negates `has_move` one stratum down, so only the strategies that
/// support negation produce cells; the rest record typed skips.
pub fn win_lose_game(n: usize, moves: usize) -> Scenario {
    Scenario::new(
        format!("win_lose/{n}x{moves}"),
        magic_workloads::win_lose(),
        magic_datalog::parse_query("win(X)").expect("query parses"),
        magic_workloads::game_graph(n, moves, 0xB10C),
    )
}

/// The bill-of-materials rollup over a random BOM of `assemblies`
/// assemblies drawing up to `max_parts` parts each: per-assembly cost
/// totals, `total(A, T)?`.  The head aggregates (`sum<C>`), so only the
/// baseline evaluators produce cells; every rewrite records a typed skip.
pub fn bom_rollup(assemblies: usize, max_parts: usize) -> Scenario {
    Scenario::new(
        format!("bom_total/{assemblies}x{max_parts}"),
        magic_workloads::bill_of_materials(),
        magic_datalog::parse_query("total(A, T)").expect("query parses"),
        magic_workloads::bom_database(assemblies, max_parts, 0xB0B0),
    )
}

/// Shortest paths in hops via `min` over a random `n`-node graph with
/// roughly `edges` edges (cycles allowed) and hop counts bounded by
/// `bound`: `shortest(X, Y, D)?`.  Like [`bom_rollup`], aggregate-headed,
/// so baseline-only.
pub fn shortest_hops(n: usize, edges: usize, bound: usize) -> Scenario {
    Scenario::new(
        format!("shortest/{n}x{edges}"),
        magic_workloads::shortest_paths(),
        magic_datalog::parse_query("shortest(X, Y, D)").expect("query parses"),
        magic_workloads::hop_graph(n, edges, bound, 0x5EED),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_run_under_magic_sets() {
        for scenario in [
            ancestor_chain(16),
            ancestor_tree(4),
            same_generation(2, 4),
            nested_same_generation(2, 4),
            list_reverse(5),
        ] {
            let result = scenario.run(Strategy::MagicSets).unwrap();
            assert!(
                !result.answers.is_empty(),
                "{} produced no answers",
                scenario.name
            );
        }
    }

    #[test]
    fn stratified_scenarios_run_and_match_their_oracles() {
        let game = win_lose_game(16, 36);
        let winners = game.run(Strategy::MagicSets).unwrap().answers;
        let expected: std::collections::BTreeSet<Vec<magic_datalog::Value>> =
            magic_workloads::win_lose_oracle(&game.database)
                .into_iter()
                .filter(|f| f.pred == magic_datalog::PredName::plain("win"))
                .map(|f| f.values)
                .collect();
        assert_eq!(winners, expected);
        assert!(!winners.is_empty());

        let bom = bom_rollup(4, 3);
        let totals = bom.run(Strategy::SemiNaiveBottomUp).unwrap().answers;
        assert_eq!(totals.len(), 4);

        let paths = shortest_hops(8, 16, 4);
        let shortest = paths.run(Strategy::SemiNaiveBottomUp).unwrap().answers;
        assert!(!shortest.is_empty());
    }

    #[test]
    fn aggregate_scenarios_are_typed_refusals_under_rewrites() {
        let err = bom_rollup(3, 2).run(Strategy::MagicSets).unwrap_err();
        assert!(matches!(
            err,
            magic_core::planner::PlanError::GuardedUnsupported { .. }
        ));
    }

    #[test]
    fn reverse_answers_are_reversed_lists() {
        let result = list_reverse(4)
            .run(Strategy::SupplementaryMagicSets)
            .unwrap();
        assert_eq!(result.answers.len(), 1);
        let answer = result.answers.iter().next().unwrap();
        let items = answer[0].as_list().unwrap();
        let names: Vec<String> = items.iter().map(|v| v.to_string()).collect();
        assert_eq!(names, vec!["e3", "e2", "e1", "e0"]);
    }
}
