//! # magic-bench
//!
//! The benchmark harness for the *Power of Magic* reproduction.
//!
//! * The Criterion benches under `benches/` compare the evaluation
//!   strategies (naive, semi-naive, GMS, GSMS, GC, GSC, ± semijoin) on the
//!   paper's four benchmark problems over synthetic workloads.
//! * `src/bin/appendix.rs` regenerates the paper's symbolic artifacts: the
//!   adorned rule sets (Appendix A.2) and the rewritten rule sets of every
//!   method (A.3–A.6).
//! * `src/bin/fact_counts.rs` regenerates the fact-count accounting that
//!   backs the paper's qualitative claims (Sections 1, 9 and 11).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;

use magic_core::planner::{PlanResult, Planner, Strategy};
use magic_datalog::{Program, Query};
use magic_storage::Database;

/// A named scenario: a program, a query and an extensional database.
pub struct Scenario {
    /// Human-readable name (used in bench ids and report rows).
    pub name: String,
    /// The program.
    pub program: Program,
    /// The query.
    pub query: Query,
    /// The data.
    pub database: Database,
}

impl Scenario {
    /// Construct a scenario.
    pub fn new(
        name: impl Into<String>,
        program: Program,
        query: Query,
        database: Database,
    ) -> Self {
        Scenario {
            name: name.into(),
            program,
            query,
            database,
        }
    }

    /// Evaluate the scenario under a strategy.
    pub fn run(&self, strategy: Strategy) -> Result<PlanResult, magic_core::planner::PlanError> {
        Planner::new(strategy).evaluate(&self.program, &self.query, &self.database)
    }
}

/// The ancestor-on-a-chain scenario of Section 1.
pub fn ancestor_chain(n: usize) -> Scenario {
    Scenario::new(
        format!("ancestor/chain/{n}"),
        magic_workloads::programs::ancestor(),
        magic_workloads::programs::ancestor_query("n0"),
        magic_workloads::chain(n),
    )
}

/// The ancestor-on-a-binary-tree scenario.
pub fn ancestor_tree(depth: usize) -> Scenario {
    Scenario::new(
        format!("ancestor/tree/{depth}"),
        magic_workloads::programs::ancestor(),
        magic_workloads::programs::ancestor_query("n0"),
        magic_workloads::binary_tree(depth),
    )
}

/// The nonlinear same-generation scenario over a layered grid.
pub fn same_generation(depth: usize, width: usize) -> Scenario {
    let cfg = magic_workloads::SgConfig {
        depth,
        width,
        flat_everywhere: true,
    };
    Scenario::new(
        format!("same_generation/{depth}x{width}"),
        magic_workloads::programs::same_generation(),
        magic_workloads::programs::same_generation_query("l0c0"),
        magic_workloads::same_generation_grid(cfg),
    )
}

/// The nested same-generation scenario of Appendix problem (3).
pub fn nested_same_generation(depth: usize, width: usize) -> Scenario {
    let cfg = magic_workloads::SgConfig {
        depth,
        width,
        flat_everywhere: true,
    };
    let mut db = magic_workloads::same_generation_grid(cfg);
    magic_workloads::nested_sg_extras(cfg, &mut db);
    Scenario::new(
        format!("nested_sg/{depth}x{width}"),
        magic_workloads::programs::nested_same_generation(),
        magic_workloads::programs::nested_sg_query("l0c0"),
        db,
    )
}

/// The list-reverse scenario of Appendix problem (4).
pub fn list_reverse(n: usize) -> Scenario {
    Scenario::new(
        format!("reverse/{n}"),
        magic_workloads::programs::list_reverse(),
        magic_workloads::programs::reverse_query(magic_workloads::list_term(n)),
        magic_workloads::reverse_database(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_run_under_magic_sets() {
        for scenario in [
            ancestor_chain(16),
            ancestor_tree(4),
            same_generation(2, 4),
            nested_same_generation(2, 4),
            list_reverse(5),
        ] {
            let result = scenario.run(Strategy::MagicSets).unwrap();
            assert!(
                !result.answers.is_empty(),
                "{} produced no answers",
                scenario.name
            );
        }
    }

    #[test]
    fn reverse_answers_are_reversed_lists() {
        let result = list_reverse(4)
            .run(Strategy::SupplementaryMagicSets)
            .unwrap();
        assert_eq!(result.answers.len(), 1);
        let answer = result.answers.iter().next().unwrap();
        let items = answer[0].as_list().unwrap();
        let names: Vec<String> = items.iter().map(|v| v.to_string()).collect();
        assert_eq!(names, vec!["e3", "e2", "e1", "e0"]);
    }
}
