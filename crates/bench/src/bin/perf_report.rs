//! Performance snapshot: run the paper's four Appendix benchmark scenarios
//! under every planner strategy and write a machine-readable JSON report.
//!
//! The report is the per-PR performance trajectory for this repository:
//! PR 1 checks in `BENCH_PR1.json`, and later engine changes regenerate the
//! file and compare.  Usage:
//!
//! ```text
//! cargo run --release -p magic-bench --bin perf_report -- \
//!     [--out BENCH_PR1.json] [--baseline BENCH_PR0_baseline.json] [--quick] \
//!     [--filter <scenario-substring>] [--strategy <short-name>]...
//! ```
//!
//! With `--baseline`, wall-clock speedups versus the named earlier snapshot
//! are computed and embedded under `"speedup_vs_baseline"`.  `--quick`
//! shrinks the scenarios (used by the smoke test in CI).
//!
//! The JSON is written by hand: the build environment has no crates.io
//! access, so there is no serde.  The format is flat and stable on purpose.

use magic_bench::{
    ancestor_chain, list_reverse, nested_same_generation, same_generation, Scenario,
};
use magic_core::planner::{Planner, Strategy};
use magic_engine::Limits;
use std::fmt::Write as _;
use std::time::Instant;

/// Evaluation limits for report cells.  Far above what any terminating
/// (scenario, strategy) pair here needs (the largest is reverse/64 at ~4.4k
/// iterations), but with a hard wall-clock budget so that the counting
/// methods' divergence on the cyclic (nested) same-generation data
/// (Section 10) surfaces as a recorded time-limit error instead of spinning
/// toward the iteration limit for hours.
fn report_limits(quick: bool) -> Limits {
    Limits::default()
        .with_max_iterations(20_000)
        .with_max_facts(20_000_000)
        .with_max_wall(std::time::Duration::from_secs(if quick { 5 } else { 30 }))
}

/// One (scenario, strategy) measurement.
struct Cell {
    strategy: Strategy,
    outcome: Outcome,
}

enum Outcome {
    Ok {
        wall_secs: f64,
        samples: usize,
        answers: usize,
        iterations: usize,
        rule_firings: usize,
        facts_derived: usize,
        duplicate_derivations: usize,
        join_probes: usize,
    },
    Skipped {
        reason: String,
    },
    Error {
        message: String,
    },
}

/// Strategies skipped for a scenario, with the reason recorded in the JSON.
fn skip_reason(scenario: &str, strategy: Strategy) -> Option<String> {
    let is_baseline = matches!(
        strategy,
        Strategy::NaiveBottomUp | Strategy::SemiNaiveBottomUp
    );
    if scenario.starts_with("ancestor/chain/1024") && strategy == Strategy::NaiveBottomUp {
        return Some(
            "naive evaluation re-derives the full quadratic closure every iteration; \
             it needs hours on a 1024-edge chain"
                .into(),
        );
    }
    if scenario.starts_with("reverse/") && is_baseline {
        return Some(
            "the unrewritten reverse program is not range-restricted; only the \
             rewrites can evaluate it bottom-up"
                .into(),
        );
    }
    None
}

/// Measure one cell: repeat the run until a 3 s budget or 200 samples,
/// whichever comes first, and report the minimum wall time.
fn measure(scenario: &Scenario, strategy: Strategy, quick: bool) -> Outcome {
    if let Some(reason) = skip_reason(&scenario.name, strategy) {
        return Outcome::Skipped { reason };
    }
    let planner = Planner::new(strategy).with_limits(report_limits(quick));
    let run = || planner.evaluate(&scenario.program, &scenario.query, &scenario.database);
    let budget = Instant::now();
    let start = Instant::now();
    let result = match run() {
        Ok(result) => result,
        Err(e) => {
            return Outcome::Error {
                message: e.to_string(),
            }
        }
    };
    let mut best = start.elapsed().as_secs_f64();
    let mut samples = 1usize;
    // Min over repeated runs within the budget: on a noisy shared host the
    // minimum is the least load-contaminated estimate of the true cost.
    // Sub-millisecond cells get hundreds of samples, second-scale cells a
    // handful; both are bounded by the same wall budget.
    while samples < 200 && budget.elapsed().as_secs_f64() <= 3.0 {
        let start = Instant::now();
        if run().is_err() {
            break;
        }
        best = best.min(start.elapsed().as_secs_f64());
        samples += 1;
    }
    Outcome::Ok {
        wall_secs: best,
        samples,
        answers: result.answers.len(),
        iterations: result.stats.iterations,
        rule_firings: result.stats.rule_firings,
        facts_derived: result.stats.facts_derived,
        duplicate_derivations: result.stats.duplicate_derivations,
        join_probes: result.stats.join_probes,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render(scenarios: &[(String, Vec<Cell>)], baseline: Option<&str>, engine: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"pr\": 1,");
    let _ = writeln!(out, "  \"engine\": \"{}\",", json_escape(engine));
    let _ = writeln!(
        out,
        "  \"generated_by\": \"cargo run --release -p magic-bench --bin perf_report\","
    );
    if let Some(cmp) = baseline {
        out.push_str(cmp);
    }
    out.push_str("  \"scenarios\": [\n");
    for (si, (name, cells)) in scenarios.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(name));
        out.push_str("      \"strategies\": [\n");
        for (ci, cell) in cells.iter().enumerate() {
            let comma = if ci + 1 == cells.len() { "" } else { "," };
            match &cell.outcome {
                Outcome::Ok {
                    wall_secs,
                    samples,
                    answers,
                    iterations,
                    rule_firings,
                    facts_derived,
                    duplicate_derivations,
                    join_probes,
                } => {
                    let _ = writeln!(
                        out,
                        "        {{\"strategy\": \"{}\", \"status\": \"ok\", \
                         \"wall_secs\": {:.6}, \"samples\": {samples}, \"answers\": {answers}, \
                         \"iterations\": {iterations}, \"rule_firings\": {rule_firings}, \
                         \"facts_derived\": {facts_derived}, \
                         \"duplicate_derivations\": {duplicate_derivations}, \
                         \"join_probes\": {join_probes}}}{comma}",
                        cell.strategy.short_name(),
                        wall_secs,
                    );
                }
                Outcome::Skipped { reason } => {
                    let _ = writeln!(
                        out,
                        "        {{\"strategy\": \"{}\", \"status\": \"skipped\", \
                         \"reason\": \"{}\"}}{comma}",
                        cell.strategy.short_name(),
                        json_escape(reason),
                    );
                }
                Outcome::Error { message } => {
                    let _ = writeln!(
                        out,
                        "        {{\"strategy\": \"{}\", \"status\": \"error\", \
                         \"error\": \"{}\"}}{comma}",
                        cell.strategy.short_name(),
                        json_escape(message),
                    );
                }
            }
        }
        out.push_str("      ]\n");
        let comma = if si + 1 == scenarios.len() { "" } else { "," };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pull `"wall_secs": <x>` for (scenario, strategy) out of a previous
/// snapshot.  A 40-line JSON parser would be overkill for a file whose
/// format we control; a line scan is exact for it.
fn baseline_wall_secs(snapshot: &str, scenario: &str, strategy: &str) -> Option<f64> {
    let mut in_scenario = false;
    for line in snapshot.lines() {
        if line.contains("\"name\":") {
            in_scenario = line.contains(&format!("\"{scenario}\""));
        }
        if in_scenario && line.contains(&format!("\"strategy\": \"{strategy}\"")) {
            let key = "\"wall_secs\": ";
            let start = line.find(key)? + key.len();
            let rest = &line[start..];
            let end = rest.find(',')?;
            return rest[..end].trim().parse().ok();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_PR1.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut quick = false;
    let mut engine = "slot-compiled".to_string();
    let mut filter: Option<String> = None;
    let mut strategies: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline needs a path").clone())
            }
            "--engine" => engine = it.next().expect("--engine needs a name").clone(),
            "--filter" => filter = Some(it.next().expect("--filter needs a substring").clone()),
            "--strategy" => strategies.push(it.next().expect("--strategy needs a name").clone()),
            "--quick" => quick = true,
            other => panic!("unknown argument: {other}"),
        }
    }

    let scenarios: Vec<Scenario> = if quick {
        vec![
            ancestor_chain(64),
            same_generation(2, 4),
            nested_same_generation(2, 4),
            list_reverse(8),
        ]
    } else {
        vec![
            ancestor_chain(1024),
            same_generation(6, 8),
            nested_same_generation(4, 6),
            list_reverse(64),
        ]
    };

    let mut results: Vec<(String, Vec<Cell>)> = Vec::new();
    for scenario in &scenarios {
        if let Some(f) = &filter {
            if !scenario.name.contains(f.as_str()) {
                continue;
            }
        }
        eprintln!("scenario {}", scenario.name);
        let mut cells = Vec::new();
        for strategy in Strategy::ALL {
            if !strategies.is_empty() && !strategies.iter().any(|s| s == strategy.short_name()) {
                continue;
            }
            eprint!("  {:<10}", strategy.short_name());
            let outcome = measure(scenario, strategy, quick);
            match &outcome {
                Outcome::Ok {
                    wall_secs,
                    join_probes,
                    ..
                } => eprintln!(" {wall_secs:>12.6}s  probes {join_probes}"),
                Outcome::Skipped { .. } => eprintln!(" skipped"),
                Outcome::Error { message } => eprintln!(" error: {message}"),
            }
            cells.push(Cell { strategy, outcome });
        }
        results.push((scenario.name.clone(), cells));
    }

    let comparison = baseline_path.map(|path| {
        let snapshot = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        // Every entry (the baseline name included) goes through one
        // comma-join so the object stays valid JSON when no cell matches
        // the snapshot.
        let mut lines = vec![format!("    \"baseline\": \"{}\"", json_escape(&path))];
        for (name, cells) in &results {
            for cell in cells {
                if let Outcome::Ok { wall_secs, .. } = cell.outcome {
                    let strategy = cell.strategy.short_name();
                    if let Some(before) = baseline_wall_secs(&snapshot, name, strategy) {
                        lines.push(format!(
                            "    \"{}/{}\": {{\"before_secs\": {:.6}, \"after_secs\": {:.6}, \"speedup\": {:.2}}}",
                            json_escape(name),
                            strategy,
                            before,
                            wall_secs,
                            before / wall_secs
                        ));
                    }
                }
            }
        }
        let mut cmp = String::from("  \"speedup_vs_baseline\": {\n");
        cmp.push_str(&lines.join(",\n"));
        cmp.push_str("\n  },\n");
        cmp
    });

    let json = render(&results, comparison.as_deref(), &engine);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
