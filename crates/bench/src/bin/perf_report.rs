//! Performance snapshot: run the paper's four Appendix benchmark scenarios
//! under every planner strategy, plus the large-scale stress scenarios
//! (`ancestor/chain/8192`, `same_generation/64x64`) and the `incr_*`
//! incremental-maintenance scenarios (single-fact insert/retract against a
//! live magic-set view vs from-scratch re-evaluation), and write a
//! machine-readable JSON report.
//!
//! The report is the per-PR performance trajectory for this repository:
//! PR 1 checked in `BENCH_PR1.json`, PR 2 added the `incr_*` scenarios
//! (`BENCH_PR2.json`), PR 3 moved storage to interned packed rows and
//! added the stress scenarios (`BENCH_PR3.json`), PR 4 added the
//! stratified parallel scheduler (`BENCH_PR4.json`: every classic cell
//! measured single-threaded *and* at the parallel thread count, with a
//! `"threads"` field per cell and labels `gms@t4` for the parallel
//! legs), PR 5 added the `serve_*` scenarios (`BENCH_PR5.json`):
//! query throughput and latency percentiles of a live `magic-serve`
//! server, measured with and without a concurrent update stream, and
//! PR 6 (`BENCH_PR6.json`) adds the parallel per-predicate merge +
//! copy-on-write storage, with two report-side additions: the
//! `serve_publish/views/{1,8,32}` scenarios (one single-view update +
//! snapshot republish against a catalog of growing size — the cells
//! whose walls must stay flat as views grow, since a publish now costs
//! O(changed views), not O(catalog)) and a **host-variance guard**: with
//! `--baseline`, any cell whose wall regressed more than 1.3x while
//! every evaluation counter stayed bit-identical to the baseline is
//! annotated `"variance_suspect": true` — identical counters prove the
//! work is the same, so the wall moved because of the host, not the
//! engine.  PR 7 (`BENCH_PR7.json`) adds the durability cells: the
//! `durable_append/wal` scenario measures WAL append throughput under
//! each fsync policy (`always` / `every8` / `never` — the price sheet
//! of the ack-durability knob), and `durable_recover/<n>` races the two
//! recovery regimes over the *same* final database: `ckpt_tail`
//! (a fresh checkpoint plus a small WAL tail) against `full_replay`
//! (a stale checkpoint with all `n` updates still in the log).  Their
//! walls demonstrate the durable design's core bound — recovery time
//! is proportional to WAL-since-checkpoint, not to database size or
//! total update history.  PR 8 (`BENCH_PR8.json`) adds the
//! `serve_overload` scenario: a closed-loop warm phase estimates the
//! writer's update capacity, then paced concurrent updaters drive
//! ~2x that capacity at a deliberately tiny writer queue
//! (`max_queue_depth = 4`) — the cell records the shed rate and the
//! latency percentiles of the *served* (acked) updates, demonstrating
//! the overload contract: a bounded queue buys bounded ack latency,
//! and the excess is refused with `BUSY`, not absorbed.
//! PR 9 (`BENCH_PR9.json`) adds the `serve_pipelined` scenario: one
//! `PipeClient` connection keeps a fixed window of binary-protocol
//! queries in flight (zipfian key popularity from
//! `magic_workloads::load`) against a four-shard server, with and
//! without a concurrent skewed update stream — the cells that
//! demonstrate what the pipelined wire format plus the sharded writer
//! layout buy over the synchronous text protocol's one-request-per-RTT
//! ceiling (the `serve_quiet` cell above).  Each cell embeds the
//! observed qps, latency percentiles, and the server's end-of-run
//! shard/pipeline telemetry (`queue_depth`, `shed_updates`,
//! `batch_size_p50`).
//! PR 10 (`BENCH_PR10.json`) adds the stratified scenario families —
//! `win_lose` (negation), `bom_total` (`sum` aggregate) and `shortest`
//! (`min` aggregate over hop counts threaded through the data) — each
//! *oracle-checked*: before a stratified scenario is measured, every
//! strategy the planner accepts is evaluated once and its answer set
//! asserted equal to a plain-Rust oracle's expected rows
//! (`magic_workloads::stratified`), so an ok cell certifies semantics,
//! not just wall time.  Strategy/feature combinations the planner
//! refuses by policy (aggregates under any rewrite, negation under the
//! non-gms rewrites — `PlanError::GuardedUnsupported`) and
//! unstratifiable programs (`PlanError::Unstratifiable`) are recorded
//! as skipped cells with the typed reason, exactly like the counting
//! safety pre-check below.
//! The pre-existing scenarios' probe counts must not move
//! between snapshots, and — the scheduler's determinism contract —
//! every counter of a parallel cell must be bit-identical to its
//! single-threaded twin (the report generator asserts this).  Usage:
//!
//! ```text
//! cargo run --release -p magic-bench --bin perf_report -- \
//!     [--out BENCH_PR10.json] [--baseline BENCH_PR9.json] [--quick] \
//!     [--threads N] [--filter <scenario-substring>] \
//!     [--strategy <short-name>]...
//! ```
//!
//! `--threads N` sets the parallel leg's thread count (default: available
//! parallelism; a resolved count of 1 skips the parallel legs).  With
//! `--baseline`, wall-clock speedups versus the named earlier snapshot
//! are computed and embedded under `"speedup_vs_baseline"`.  `--quick`
//! shrinks the scenarios (used by the smoke test in CI).  Each `incr_*`
//! scenario carries two cells — `incr` (the maintenance operation) and
//! `scratch` (full re-evaluation of the same rewritten program over the
//! updated base facts) — and the `incr` cell embeds
//! `"speedup_vs_scratch"`.
//!
//! Counting plans that the planner's cycle-detecting pre-check refuses
//! (`PlanError::CountingUnsafe`, Theorem 10.3) are recorded as skipped
//! cells with the typed reason instead of burning the wall budget.
//!
//! Each `serve_*` scenario starts an in-process TCP server, warms one
//! materialized view per query binding, then drives it with concurrent
//! reader clients (one thread each) while an updater client replays a
//! bounded insert/retract stream.  Two cells are recorded: `serve_quiet`
//! (readers only — the pure snapshot-read ceiling) and `serve` (readers
//! racing the update stream), each carrying `"qps"`, `"p50_ms"`,
//! `"p99_ms"` and the applied-update count in its extra fields.  Latency
//! is measured per request at the client, over loopback TCP.
//!
//! The JSON is written by hand: the build environment has no crates.io
//! access, so there is no serde.  The format is flat and stable on purpose.

use magic_bench::{
    ancestor_chain, bom_rollup, list_reverse, nested_same_generation, same_generation,
    shortest_hops, win_lose_game, Scenario,
};
use magic_core::planner::{PlanError, Planner, Strategy};
use magic_datalog::{Fact, PredName, Value};
use magic_durable::{DurableConfig, DurableStore, FsyncPolicy, Wal};
use magic_engine::{EvalStats, Evaluator, Limits};
use magic_incr::{MaterializedView, Update, ViewCatalog};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::time::Instant;

/// Evaluation limits for report cells.  Far above what any terminating
/// (scenario, strategy) pair here needs (the largest is reverse/64 at ~4.4k
/// iterations), but with a hard wall-clock budget so that the counting
/// methods' divergence on the cyclic (nested) same-generation data
/// (Section 10) surfaces as a recorded time-limit error instead of spinning
/// toward the iteration limit for hours.
///
/// `ancestor/chain/8192` under gms is the deliberate outlier: its
/// quadratic closure (~33.5M `anc` pairs) needs a bigger fact budget and
/// a few minutes of wall — it is the parallel scheduler's headline
/// scenario, so it runs despite the cost.
fn report_limits(quick: bool, scenario: &str) -> Limits {
    let limits = Limits::default()
        .with_max_iterations(20_000)
        .with_max_facts(20_000_000)
        .with_max_wall(std::time::Duration::from_secs(if quick { 5 } else { 30 }));
    if scenario.starts_with("ancestor/chain/8192") {
        limits
            .with_max_facts(40_000_000)
            .with_max_wall(std::time::Duration::from_secs(600))
    } else {
        limits
    }
}

/// One (scenario, strategy) measurement.  `label` is a planner strategy
/// short name for the classic scenarios, or `incr` / `scratch` for the
/// incremental ones; `extra` is raw JSON appended into the cell object.
struct Cell {
    label: String,
    outcome: Outcome,
    extra: String,
}

impl Cell {
    fn new(label: impl Into<String>, outcome: Outcome) -> Cell {
        Cell {
            label: label.into(),
            outcome,
            extra: String::new(),
        }
    }
}

enum Outcome {
    Ok {
        wall_secs: f64,
        samples: usize,
        answers: usize,
        iterations: usize,
        rule_firings: usize,
        facts_derived: usize,
        duplicate_derivations: usize,
        join_probes: usize,
    },
    Skipped {
        reason: String,
    },
    Error {
        message: String,
    },
}

/// Strategies skipped for a scenario, with the reason recorded in the JSON.
fn skip_reason(scenario: &str, strategy: Strategy) -> Option<String> {
    let is_baseline = matches!(
        strategy,
        Strategy::NaiveBottomUp | Strategy::SemiNaiveBottomUp
    );
    if scenario.starts_with("ancestor/chain/1024") && strategy == Strategy::NaiveBottomUp {
        return Some(
            "naive evaluation re-derives the full quadratic closure every iteration; \
             it needs hours on a 1024-edge chain"
                .into(),
        );
    }
    if scenario.starts_with("ancestor/chain/8192")
        && !matches!(
            strategy,
            Strategy::MagicSets
                | Strategy::CountingSemijoin
                | Strategy::SupplementaryCountingSemijoin
        )
    {
        return Some(
            "the quadratic closure of an 8192-edge chain (~33.5M pairs) needs minutes \
             per run; gms carries the full-closure measurement (the parallel \
             scheduler's headline), the linear counting+semijoin strategies the \
             cheap one"
                .into(),
        );
    }
    if scenario.starts_with("same_generation/64x64") && strategy == Strategy::NaiveBottomUp {
        return Some(
            "naive re-derivation over the 64x64 grid exceeds the wall budget; the \
             semi-naive baseline covers the unrewritten comparison"
                .into(),
        );
    }
    if scenario.starts_with("reverse/") && is_baseline {
        return Some(
            "the unrewritten reverse program is not range-restricted; only the \
             rewrites can evaluate it bottom-up"
                .into(),
        );
    }
    None
}

/// Measure one cell at the given thread count: repeat the run until a 3 s
/// budget or 200 samples, whichever comes first, and report the minimum
/// wall time.  Plans the planner's pre-checks refuse — counting safety,
/// stratification, the guarded-feature policy — are recorded as typed
/// skips.
fn measure(scenario: &Scenario, strategy: Strategy, quick: bool, threads: usize) -> Outcome {
    if let Some(reason) = skip_reason(&scenario.name, strategy) {
        return Outcome::Skipped { reason };
    }
    let limits = report_limits(quick, &scenario.name).with_threads(threads);
    let planner = Planner::new(strategy).with_limits(limits);
    let run = || planner.evaluate(&scenario.program, &scenario.query, &scenario.database);
    let budget = Instant::now();
    let start = Instant::now();
    let result = match run() {
        Ok(result) => result,
        Err(
            e @ (PlanError::CountingUnsafe { .. }
            | PlanError::Unstratifiable { .. }
            | PlanError::GuardedUnsupported { .. }),
        ) => {
            return Outcome::Skipped {
                reason: e.to_string(),
            }
        }
        Err(e) => {
            return Outcome::Error {
                message: e.to_string(),
            }
        }
    };
    let mut best = start.elapsed().as_secs_f64();
    let mut samples = 1usize;
    // Min over repeated runs within the budget: on a noisy shared host the
    // minimum is the least load-contaminated estimate of the true cost.
    // Sub-millisecond cells get hundreds of samples, second-scale cells a
    // handful; both are bounded by the same wall budget.
    while samples < 200 && budget.elapsed().as_secs_f64() <= 3.0 {
        let start = Instant::now();
        if run().is_err() {
            break;
        }
        best = best.min(start.elapsed().as_secs_f64());
        samples += 1;
    }
    Outcome::Ok {
        wall_secs: best,
        samples,
        answers: result.answers.len(),
        iterations: result.stats.iterations,
        rule_firings: result.stats.rule_firings,
        facts_derived: result.stats.facts_derived,
        duplicate_derivations: result.stats.duplicate_derivations,
        join_probes: result.stats.join_probes,
    }
}

/// An incremental-maintenance scenario: a live view over the magic-set
/// rewriting of a benchmark scenario, one base-fact update against it, and
/// the from-scratch re-evaluation it is raced against.
struct IncrScenario {
    name: String,
    /// The rewritten (gms) program the view maintains.
    program: magic_datalog::Program,
    database: magic_storage::Database,
    /// How to read the query's answers out of the fixpoint.
    answer_atom: magic_datalog::Atom,
    projection: Vec<magic_datalog::Variable>,
    update: Fact,
    /// `false`: measure insert (restore by retract); `true`: measure
    /// retract (restore by insert).
    measure_retract: bool,
}

fn incr_scenarios(quick: bool) -> Vec<IncrScenario> {
    let chain_n = if quick { 64 } else { 1024 };
    let (sg_depth, sg_width) = if quick { (2, 4) } else { (6, 8) };
    let gms = Planner::new(Strategy::MagicSets);
    let mut out = Vec::new();

    let chain = ancestor_chain(chain_n);
    let plan = gms
        .plan(&chain.program, &chain.query)
        .expect("gms plans ancestor");
    let sym_edge = |i: usize, j: usize| {
        Fact::plain(
            "par",
            vec![
                Value::sym(&magic_workloads::node(i)),
                Value::sym(&magic_workloads::node(j)),
            ],
        )
    };
    out.push(IncrScenario {
        name: format!("incr_insert/{}", chain.name),
        program: plan.program.clone(),
        database: chain.database.clone(),
        answer_atom: plan.answer_atom.clone(),
        projection: plan.projection.clone(),
        update: sym_edge(chain_n, chain_n + 1),
        measure_retract: false,
    });
    out.push(IncrScenario {
        name: format!("incr_retract/{}", chain.name),
        program: plan.program,
        database: chain.database,
        answer_atom: plan.answer_atom,
        projection: plan.projection,
        update: sym_edge(chain_n - 1, chain_n),
        measure_retract: true,
    });

    let sg = same_generation(sg_depth, sg_width);
    let plan = gms
        .plan(&sg.program, &sg.query)
        .expect("gms plans same-generation");
    let flat = |a: &str, b: &str| Fact::plain("flat", vec![Value::sym(a), Value::sym(b)]);
    out.push(IncrScenario {
        name: format!("incr_insert/{}", sg.name),
        program: plan.program.clone(),
        database: sg.database.clone(),
        answer_atom: plan.answer_atom.clone(),
        projection: plan.projection.clone(),
        // A non-adjacent flat edge: absent from the generated grid.
        update: flat(
            &magic_workloads::grid_node(0, 0),
            &magic_workloads::grid_node(0, 2),
        ),
        measure_retract: false,
    });
    out.push(IncrScenario {
        name: format!("incr_retract/{}", sg.name),
        program: plan.program,
        database: sg.database,
        answer_atom: plan.answer_atom,
        projection: plan.projection,
        update: flat(
            &magic_workloads::grid_node(0, 0),
            &magic_workloads::grid_node(0, 1),
        ),
        measure_retract: true,
    });
    out
}

/// Counter deltas of the last timed maintenance op.
fn stats_delta(after: &EvalStats, before: &EvalStats) -> (usize, usize, usize, usize, usize) {
    (
        after.iterations - before.iterations,
        after.rule_firings - before.rule_firings,
        after.facts_derived - before.facts_derived,
        after.duplicate_derivations - before.duplicate_derivations,
        after.join_probes - before.join_probes,
    )
}

/// Measure one incremental scenario: the maintenance op on a live view
/// (min wall over repeated op+restore round trips) and the from-scratch
/// re-evaluation of the same program over the updated base facts.
fn measure_incr(scenario: &IncrScenario, quick: bool) -> (Cell, Cell) {
    // Incr cells are pinned single-threaded (like the classic `t=1`
    // legs): without the explicit pin they would silently inherit an
    // ambient MAGIC_THREADS and record env-dependent wall times.
    let limits = report_limits(quick, &scenario.name).with_threads(1);
    let mut view =
        match MaterializedView::with_limits(&scenario.program, &scenario.database, limits) {
            Ok(view) => view,
            Err(e) => {
                let message = e.to_string();
                return (
                    Cell::new(
                        "incr",
                        Outcome::Error {
                            message: message.clone(),
                        },
                    ),
                    Cell::new("scratch", Outcome::Error { message }),
                );
            }
        };

    let budget = Instant::now();
    let mut best = f64::INFINITY;
    let mut samples = 0usize;
    let mut delta = (0, 0, 0, 0, 0);
    let mut failure: Option<String> = None;
    while samples < 200 && (samples == 0 || budget.elapsed().as_secs_f64() <= 3.0) {
        let before = view.stats().clone();
        let start = Instant::now();
        let result = if scenario.measure_retract {
            view.retract(&scenario.update)
        } else {
            view.insert(&scenario.update)
        };
        let wall = start.elapsed().as_secs_f64();
        let changed = match result {
            Ok(changed) => changed,
            Err(e) => {
                failure = Some(e.to_string());
                break;
            }
        };
        if !changed {
            failure = Some("maintenance op was a no-op".into());
            break;
        }
        if wall < best {
            best = wall;
            delta = stats_delta(view.stats(), &before);
        }
        samples += 1;
        // Untimed restore, so every sample measures the same transition.
        let restore = if scenario.measure_retract {
            view.insert(&scenario.update)
        } else {
            view.retract(&scenario.update)
        };
        if let Err(e) = restore {
            failure = Some(format!("restore failed: {e}"));
            break;
        }
    }
    if let Some(message) = failure {
        return (
            Cell::new(
                "incr",
                Outcome::Error {
                    message: message.clone(),
                },
            ),
            Cell::new("scratch", Outcome::Error { message }),
        );
    }

    // From-scratch rival: evaluate the same rewritten program over the
    // updated base facts (what serving the update without incremental
    // maintenance would cost).
    let mut updated = scenario.database.clone();
    if scenario.measure_retract {
        updated.remove_fact(&scenario.update);
    } else {
        updated.insert_fact(&scenario.update);
    }
    let evaluator = Evaluator::new(scenario.program.clone()).with_limits(limits);
    let scratch_budget = Instant::now();
    let mut scratch_best = f64::INFINITY;
    let mut scratch_samples = 0usize;
    let mut scratch_result = None;
    while scratch_samples < 200
        && (scratch_samples == 0 || scratch_budget.elapsed().as_secs_f64() <= 3.0)
    {
        let start = Instant::now();
        match evaluator.run(&updated) {
            Ok(result) => {
                scratch_best = scratch_best.min(start.elapsed().as_secs_f64());
                scratch_samples += 1;
                scratch_result = Some(result);
            }
            Err(e) => {
                let message = e.to_string();
                return (
                    Cell::new(
                        "incr",
                        Outcome::Error {
                            message: message.clone(),
                        },
                    ),
                    Cell::new("scratch", Outcome::Error { message }),
                );
            }
        }
    }
    let scratch_result = scratch_result.expect("at least one scratch sample ran");
    let scratch_answers = magic_engine::answers::project_answers(
        &scratch_result.database,
        &scenario.answer_atom,
        &scenario.projection,
    )
    .len();

    let (iterations, rule_firings, facts_derived, duplicate_derivations, join_probes) = delta;
    let mut incr_cell = Cell::new(
        "incr",
        Outcome::Ok {
            wall_secs: best,
            samples,
            answers: scratch_answers,
            iterations,
            rule_firings,
            facts_derived,
            duplicate_derivations,
            join_probes,
        },
    );
    incr_cell.extra = format!(
        ", \"threads\": 1, \"speedup_vs_scratch\": {:.2}",
        scratch_best / best
    );
    let mut scratch_cell = Cell::new(
        "scratch",
        Outcome::Ok {
            wall_secs: scratch_best,
            samples: scratch_samples,
            answers: scratch_answers,
            iterations: scratch_result.stats.iterations,
            rule_firings: scratch_result.stats.rule_firings,
            facts_derived: scratch_result.stats.facts_derived,
            duplicate_derivations: scratch_result.stats.duplicate_derivations,
            join_probes: scratch_result.stats.join_probes,
        },
    );
    scratch_cell.extra = ", \"threads\": 1".to_string();
    (incr_cell, scratch_cell)
}

/// A serving-layer scenario: an in-process `magic-serve` server driven by
/// concurrent reader clients, with and without a live update stream.
struct ServeScenario {
    name: String,
    program: magic_datalog::Program,
    database: magic_storage::Database,
    /// Node count of the underlying chain (edges + 1); the update stream
    /// is generated over this node set.
    nodes: usize,
    /// Concurrent reader connections.
    readers: usize,
    /// Queries each reader issues.
    requests_per_reader: usize,
    /// Distinct query bindings (→ materialized views on the server).
    bindings: usize,
    /// Approximate length of the updater's bounded insert/retract stream
    /// (the generated request mix carries ~this many updates).
    update_ops: usize,
}

fn serve_scenarios(quick: bool) -> Vec<ServeScenario> {
    let edges = if quick { 32 } else { 256 };
    vec![ServeScenario {
        name: format!("serve/ancestor/chain/{edges}"),
        program: magic_workloads::programs::ancestor(),
        database: magic_workloads::chain(edges),
        nodes: edges + 1,
        readers: if quick { 2 } else { 4 },
        requests_per_reader: if quick { 40 } else { 250 },
        bindings: if quick { 2 } else { 4 },
        update_ops: if quick { 30 } else { 300 },
    }]
}

/// Percentile (`p` in 0..=100) of an unsorted latency sample, in
/// milliseconds; nearest-rank on the sorted data.
fn percentile_ms(latencies: &mut [f64], p: f64) -> f64 {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    if latencies.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * latencies.len() as f64).ceil() as usize;
    latencies[rank.saturating_sub(1).min(latencies.len() - 1)] * 1e3
}

/// Drive one serve leg: `readers` concurrent query clients, plus (when
/// `with_updates`) an updater client replaying the bounded stream.
/// Returns (cell, total queries) or an error message.
fn run_serve_leg(
    scenario: &ServeScenario,
    with_updates: bool,
    label: &str,
) -> Result<Cell, String> {
    use magic_serve::{Client, ServeConfig, Server};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // Views maintain single-threaded (like the `incr_*` cells): the
    // serving layer's concurrency is across requests, not inside one
    // fixpoint, and this keeps the cells comparable whatever the ambient
    // MAGIC_THREADS is.
    let config = ServeConfig {
        limits: Limits::default().with_threads(1),
        ..ServeConfig::default()
    };
    let mut server = Server::start(
        scenario.program.clone(),
        scenario.database.clone(),
        "127.0.0.1:0",
        config,
    )
    .map_err(|e| format!("server start: {e}"))?;
    let addr = server.addr();

    // The load shape comes from the workloads request-stream generator
    // (`magic_workloads::requests`): one deterministic query/update mix,
    // whose query subsequence drives the readers and whose update
    // subsequence drives the updater — the same stream the CI serve
    // smoke replays at quick size.
    let stream = magic_workloads::ancestor_request_stream(
        scenario.nodes,
        scenario.update_ops * 5, // ~80% queries => ~update_ops updates
        80,
        scenario.bindings,
        60,
        0xA11CE,
    );
    let query_pool: Vec<String> = stream
        .iter()
        .filter_map(|r| match r {
            magic_workloads::ServeRequest::Query(q) => Some(q.clone()),
            magic_workloads::ServeRequest::Update(_) => None,
        })
        .collect();
    let update_stream: Vec<magic_workloads::UpdateOp> = stream
        .into_iter()
        .filter_map(|r| match r {
            magic_workloads::ServeRequest::Update(op) => Some(op),
            magic_workloads::ServeRequest::Query(_) => None,
        })
        .collect();
    if query_pool.is_empty() {
        return Err("generated request stream carries no queries".into());
    }

    // Warm every binding so the measured requests hit the pure
    // snapshot-read path (materialization cost is a one-off).
    let mut warm = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let distinct: std::collections::BTreeSet<&String> = query_pool.iter().collect();
    let mut last_answers = 0usize;
    for query in distinct {
        last_answers = warm
            .query(query)
            .map_err(|e| format!("warm: {e}"))?
            .rows
            .len();
    }

    // Readers issue at least `requests_per_reader` queries each, and keep
    // querying until the updater's bounded stream has fully drained — the
    // `serve` leg must measure sustained mixed load, not a few microseconds
    // of overlap (capped so a stalled updater cannot hang the report).
    let updates_done = Arc::new(AtomicBool::new(!with_updates));
    let start = Instant::now();
    let updater = if with_updates {
        let stream = update_stream;
        let done = Arc::clone(&updates_done);
        Some(std::thread::spawn(move || -> Result<usize, String> {
            let mut client = Client::connect(addr).map_err(|e| format!("updater connect: {e}"))?;
            let mut applied = 0usize;
            for op in &stream {
                let ack = match op {
                    magic_workloads::UpdateOp::Insert(f) => client.insert_fact(f),
                    magic_workloads::UpdateOp::Retract(f) => client.retract_fact(f),
                };
                if ack
                    .inspect_err(|_| done.store(true, Ordering::Relaxed))
                    .map_err(|e| format!("updater: {e}"))?
                    .applied
                {
                    applied += 1;
                }
            }
            done.store(true, Ordering::Relaxed);
            Ok(applied)
        }))
    } else {
        None
    };

    let reader_handles: Vec<_> = (0..scenario.readers)
        .map(|r| {
            let queries = query_pool.clone();
            let count = scenario.requests_per_reader;
            let done = Arc::clone(&updates_done);
            std::thread::spawn(move || -> Result<Vec<f64>, String> {
                let mut client =
                    Client::connect(addr).map_err(|e| format!("reader connect: {e}"))?;
                let mut latencies = Vec::with_capacity(count);
                for i in 0..count * 50 {
                    if i >= count && done.load(Ordering::Relaxed) {
                        break;
                    }
                    let query = &queries[(r * 17 + i) % queries.len()];
                    let sent = Instant::now();
                    client.query(query).map_err(|e| format!("reader: {e}"))?;
                    latencies.push(sent.elapsed().as_secs_f64());
                }
                Ok(latencies)
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::new();
    let mut failure: Option<String> = None;
    for handle in reader_handles {
        match handle.join().map_err(|_| "reader panicked".to_string()) {
            Ok(Ok(mut sample)) => latencies.append(&mut sample),
            Ok(Err(e)) => failure = Some(e),
            Err(e) => failure = Some(e),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let applied = match updater {
        Some(handle) => match handle.join().map_err(|_| "updater panicked".to_string()) {
            Ok(Ok(applied)) => applied,
            Ok(Err(e)) => {
                failure.get_or_insert(e);
                0
            }
            Err(e) => {
                failure.get_or_insert(e);
                0
            }
        },
        None => 0,
    };
    server.shutdown();
    if let Some(message) = failure {
        return Err(message);
    }

    let queries_total = latencies.len();
    let qps = queries_total as f64 / elapsed;
    let p50 = percentile_ms(&mut latencies, 50.0);
    let p99 = percentile_ms(&mut latencies, 99.0);
    let mut cell = Cell::new(
        label,
        Outcome::Ok {
            wall_secs: elapsed,
            samples: queries_total,
            answers: last_answers,
            iterations: 0,
            rule_firings: 0,
            facts_derived: 0,
            duplicate_derivations: 0,
            join_probes: 0,
        },
    );
    cell.extra = format!(
        ", \"readers\": {}, \"qps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
         \"updates_applied\": {}",
        scenario.readers, qps, p50, p99, applied
    );
    Ok(cell)
}

/// Measure one serve scenario: the quiet (read-only) leg, then the leg
/// racing a live update stream.
fn measure_serve(scenario: &ServeScenario) -> Vec<Cell> {
    ["serve_quiet", "serve"]
        .into_iter()
        .map(|label| {
            let with_updates = label == "serve";
            run_serve_leg(scenario, with_updates, label)
                .unwrap_or_else(|message| Cell::new(label, Outcome::Error { message }))
        })
        .collect()
}

/// In-flight window of the pipelined closed-loop client: deep enough to
/// keep the server's decode/batch path fed over loopback, shallow enough
/// that the recorded latency reflects service time and the queueing the
/// *server* added, not an unbounded client-side backlog.
const PIPELINE_WINDOW: usize = 64;

/// Writer shard count of the pipelined cells — the multi-shard layout
/// the restart and chaos suites pin.
const PIPELINE_SHARDS: usize = 4;

/// Drive one pipelined leg: a single `PipeClient` keeping
/// [`PIPELINE_WINDOW`] zipfian binary-protocol queries in flight against
/// a [`PIPELINE_SHARDS`]-shard server, plus (when `with_updates`) a
/// text-protocol updater streaming skewed `par` edits for the whole
/// measured window.  Latency is submit→claim at the client, so it
/// includes the window's own queueing — the number a production
/// pipelined caller would actually observe.
fn run_pipelined_leg(quick: bool, with_updates: bool, label: &str) -> Result<Cell, String> {
    use magic_serve::{Client, PipeClient, ServeConfig, Server};
    use magic_workloads::{LoadConfig, LoadGen, ServeRequest, UpdateOp};
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let edges = if quick { 32 } else { 256 };
    let total_queries = if quick { 2_000 } else { 40_000 };
    let config = ServeConfig {
        limits: Limits::default().with_threads(1),
        writer_shards: PIPELINE_SHARDS,
        ..ServeConfig::default()
    };
    let mut server = Server::start(
        magic_workloads::programs::ancestor_intro(),
        magic_workloads::chain(edges),
        "127.0.0.1:0",
        config,
    )
    .map_err(|e| format!("server start: {e}"))?;
    let addr = server.addr();

    // The zipfian load shape (`magic_workloads::load`): query popularity
    // over the chain's node ranks, update endpoints over the `z*` side
    // universe.  Two single-purpose generators (one all-queries, one
    // all-updates) keep each stream deterministic on its own.
    let shape = LoadConfig {
        query_keys: (edges / 4).max(8),
        ..LoadConfig::default()
    };
    let queries: Vec<String> = LoadGen::new(
        LoadConfig {
            query_pct: 100,
            ..shape.clone()
        },
        0xB1A5ED,
    )
    .filter_map(|r| match r {
        ServeRequest::Query(q) => Some(q),
        ServeRequest::Update(_) => None,
    })
    .take(total_queries)
    .collect();

    // Warm every binding so the measured loop runs on the pure
    // snapshot-read path (plus whatever republishes the updater forces).
    let mut warm = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let distinct: std::collections::BTreeSet<&String> = queries.iter().collect();
    let mut last_answers = 0usize;
    for query in distinct {
        last_answers = warm
            .query(query)
            .map_err(|e| format!("warm: {e}"))?
            .rows
            .len();
    }

    // The updater draws from an *infinite* skewed edit stream and stops
    // on the flag, so the live leg is sustained mixed load for the whole
    // measured window by construction.
    let done = Arc::new(AtomicBool::new(false));
    let updater = with_updates.then(|| {
        let done = Arc::clone(&done);
        let stream = LoadGen::new(
            LoadConfig {
                query_pct: 0,
                ..shape
            },
            0x5EED,
        );
        std::thread::spawn(move || -> Result<usize, String> {
            let mut client = Client::connect(addr).map_err(|e| format!("updater connect: {e}"))?;
            let mut applied = 0usize;
            for request in stream {
                if done.load(Ordering::Relaxed) {
                    break;
                }
                let ServeRequest::Update(op) = request else {
                    continue;
                };
                let ack = match &op {
                    UpdateOp::Insert(f) => client.insert_fact(f),
                    UpdateOp::Retract(f) => client.retract_fact(f),
                };
                if ack.map_err(|e| format!("updater: {e}"))?.applied {
                    applied += 1;
                }
            }
            Ok(applied)
        })
    });

    // The measured closed loop: one pipelined connection, WINDOW ids in
    // flight, claimed oldest-first.  Responses are claimed raw
    // (status-checked, bodies not re-parsed into rows): the cell
    // measures serving capacity, and on a single-core loopback host a
    // full client-side row parse would otherwise steal the core the
    // server is being measured on — the warm phase above already
    // verified the answers through the parsing client.  Runs inside a
    // closure so the updater and server are torn down on either path
    // before the Result is inspected.
    let measured = (|| -> Result<(Vec<f64>, f64, magic_serve::ServerStats), String> {
        let mut pipe = PipeClient::connect(addr).map_err(|e| format!("pipe connect: {e}"))?;
        let mut latencies = Vec::with_capacity(queries.len());
        let mut window: VecDeque<(u64, Instant)> = VecDeque::with_capacity(PIPELINE_WINDOW);
        let start = Instant::now();
        for query in &queries {
            if window.len() >= PIPELINE_WINDOW {
                let (id, sent) = window.pop_front().expect("window is non-empty");
                pipe.wait_response_timed(id)
                    .map_err(|e| format!("pipelined wait: {e}"))?;
                latencies.push(sent.elapsed().as_secs_f64());
            }
            let id = pipe
                .submit_query(query)
                .map_err(|e| format!("pipelined submit: {e}"))?;
            window.push_back((id, Instant::now()));
        }
        for (id, sent) in window {
            pipe.wait_response_timed(id)
                .map_err(|e| format!("pipelined drain: {e}"))?;
            latencies.push(sent.elapsed().as_secs_f64());
        }
        let elapsed = start.elapsed().as_secs_f64();
        // Shard/pipeline telemetry over the same connection, right after
        // the measured window (the updater may still be running).
        let id = pipe
            .submit_stats()
            .map_err(|e| format!("stats submit: {e}"))?;
        let stats = pipe
            .wait_stats(id)
            .map_err(|e| format!("stats wait: {e}"))?;
        Ok((latencies, elapsed, stats))
    })();

    done.store(true, Ordering::Relaxed);
    let mut failure: Option<String> = None;
    let applied = match updater {
        Some(handle) => match handle.join().map_err(|_| "updater panicked".to_string()) {
            Ok(Ok(applied)) => applied,
            Ok(Err(e)) | Err(e) => {
                failure = Some(e);
                0
            }
        },
        None => 0,
    };
    server.shutdown();
    let (mut latencies, elapsed, stats) = measured?;
    if let Some(message) = failure {
        return Err(message);
    }

    let queries_total = latencies.len();
    let qps = queries_total as f64 / elapsed;
    let p50 = percentile_ms(&mut latencies, 50.0);
    let p99 = percentile_ms(&mut latencies, 99.0);
    let mut cell = Cell::new(
        label,
        Outcome::Ok {
            wall_secs: elapsed,
            samples: queries_total,
            answers: last_answers,
            iterations: 0,
            rule_firings: 0,
            facts_derived: 0,
            duplicate_derivations: 0,
            join_probes: 0,
        },
    );
    cell.extra = format!(
        ", \"shards\": {}, \"window\": {}, \"qps\": {:.1}, \"p50_ms\": {:.3}, \
         \"p99_ms\": {:.3}, \"queue_depth\": {}, \"shed_updates\": {}, \
         \"batch_size_p50\": {}, \"updates_applied\": {}",
        PIPELINE_SHARDS,
        PIPELINE_WINDOW,
        qps,
        p50,
        p99,
        stats.queue_depth,
        stats.shed_updates,
        stats.batch_size_p50,
        applied
    );
    Ok(cell)
}

/// Measure the pipelined scenario: the quiet (read-only) leg, then the
/// leg racing the sustained skewed update stream.
fn measure_serve_pipelined(quick: bool) -> Vec<Cell> {
    ["serve_pipelined_quiet", "serve_pipelined"]
        .into_iter()
        .map(|label| {
            let with_updates = label == "serve_pipelined";
            run_pipelined_leg(quick, with_updates, label)
                .unwrap_or_else(|message| Cell::new(label, Outcome::Error { message }))
        })
        .collect()
}

/// View counts for the `serve_publish` scenarios: the publish-cost cells
/// must stay flat across this range (the CI smoke compares the first and
/// last).
const PUBLISH_VIEW_COUNTS: [usize; 3] = [1, 8, 32];

/// Measure the writer-side publish path at a given catalog population:
/// one single-view maintenance op plus the republish of exactly that
/// view's snapshot entry and the map clone handed to readers.
///
/// This is the cost model the COW storage buys: before PR 6 a publish
/// deep-copied the whole catalog, so this cell's wall grew linearly in
/// `views`; now the snapshot is `Arc` pointer bumps and the map clone is
/// O(views) pointer bumps, so the wall is dominated by the (constant)
/// single-view maintenance and must stay flat from `views = 1` to `32`.
/// The counters record the maintenance delta of the touched view — the
/// same update against the same view every time, so they are identical
/// across all three view counts by construction (drift would mean the
/// catalog population leaks into single-view maintenance).
fn measure_publish(views: usize, quick: bool) -> Cell {
    use magic_incr::ViewCatalog;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    let program = magic_workloads::programs::ancestor();
    let edges = if quick { 64 } else { 256 };
    let database = magic_workloads::chain(edges);
    let limits = Limits::default().with_threads(1);
    let mut catalog = ViewCatalog::new(Strategy::MagicSets).with_limits(limits);

    // One materialized view per distinct binding, like the server's
    // catalog after `views` distinct warm queries.
    let mut keys = Vec::with_capacity(views);
    for i in 0..views {
        let query = match magic_datalog::parse_query(&format!("a({}, Y)", magic_workloads::node(i)))
        {
            Ok(query) => query,
            Err(e) => {
                return Cell::new(
                    "publish",
                    Outcome::Error {
                        message: e.to_string(),
                    },
                )
            }
        };
        match catalog.materialize(&program, &query, &database) {
            Ok(key) => keys.push(key),
            Err(e) => {
                return Cell::new(
                    "publish",
                    Outcome::Error {
                        message: e.to_string(),
                    },
                )
            }
        }
    }
    let mut published: BTreeMap<String, Arc<magic_incr::ViewSnapshot>> = keys
        .iter()
        .map(|key| {
            let snap = catalog.snapshot_view(key).expect("just materialized");
            (key.clone(), Arc::new(snap))
        })
        .collect();
    let target = keys[0].clone();
    let answers = catalog.answers(&target).map_or(0, |a| a.len());
    let edge = Fact::plain(
        "par",
        vec![
            Value::sym(&magic_workloads::node(edges)),
            Value::sym(&magic_workloads::node(edges + 1)),
        ],
    );

    let budget = Instant::now();
    let mut best = f64::INFINITY;
    let mut samples = 0usize;
    let mut delta = (0, 0, 0, 0, 0);
    let mut failure: Option<String> = None;
    while samples < 200 && (samples == 0 || budget.elapsed().as_secs_f64() <= 3.0) {
        let before = catalog.view(&target).expect("live view").stats().clone();
        let start = Instant::now();
        match catalog.view_mut(&target).expect("live view").insert(&edge) {
            Ok(true) => {}
            Ok(false) => {
                failure = Some("publish update was a no-op".into());
                break;
            }
            Err(e) => {
                failure = Some(e.to_string());
                break;
            }
        }
        let snap = catalog.snapshot_view(&target).expect("live view");
        published.insert(target.clone(), Arc::new(snap));
        // The clone is what the writer hands the reader side per publish.
        let handed_to_readers = published.clone();
        let wall = start.elapsed().as_secs_f64();
        drop(handed_to_readers);
        if wall < best {
            best = wall;
            delta = stats_delta(catalog.view(&target).expect("live view").stats(), &before);
        }
        samples += 1;
        // Untimed restore, so every sample measures the same transition.
        if let Err(e) = catalog.view_mut(&target).expect("live view").retract(&edge) {
            failure = Some(format!("restore failed: {e}"));
            break;
        }
        let snap = catalog.snapshot_view(&target).expect("live view");
        published.insert(target.clone(), Arc::new(snap));
    }
    if let Some(message) = failure {
        return Cell::new("publish", Outcome::Error { message });
    }

    let (iterations, rule_firings, facts_derived, duplicate_derivations, join_probes) = delta;
    let mut cell = Cell::new(
        "publish",
        Outcome::Ok {
            wall_secs: best,
            samples,
            answers,
            iterations,
            rule_firings,
            facts_derived,
            duplicate_derivations,
            join_probes,
        },
    );
    cell.extra = format!(", \"threads\": 1, \"views\": {views}");
    cell
}

/// The writer-queue bound the `serve_overload` scenario measures at:
/// deliberately tiny, so that paced concurrent updaters can actually
/// fill it (closed-loop clients can never hold more commands in flight
/// than they have connections).
const OVERLOAD_QUEUE_DEPTH: usize = 4;

/// Concurrent updater connections driving the overload phase.  Must
/// exceed [`OVERLOAD_QUEUE_DEPTH`] or the queue can never be full at
/// dispatch time and nothing sheds.
const OVERLOAD_WRITERS: usize = 12;

/// Measure the overload-protection path: a closed-loop warm phase
/// estimates the writer's update capacity, then [`OVERLOAD_WRITERS`]
/// paced updaters drive ~2x that capacity at a queue bound of
/// [`OVERLOAD_QUEUE_DEPTH`].  The contract the cell demonstrates: the
/// excess is refused with `BUSY` (a fast, truthful no), while every
/// *served* update keeps a bounded ack latency — the queue bound is
/// the latency bound.  `wall_secs` is the overload phase's elapsed
/// time; the shed rate and served-latency percentiles ride in the
/// extra fields.  Every fact is unique and disconnected from the
/// warmed view's binding, so per-op maintenance cost stays flat.
fn measure_serve_overload(quick: bool) -> Cell {
    use magic_serve::{Client, ClientError, ServeConfig, Server};

    let fail = |message: String| Cell::new("overload", Outcome::Error { message });
    let config = ServeConfig {
        limits: Limits::default().with_threads(1),
        max_queue_depth: OVERLOAD_QUEUE_DEPTH,
        ..ServeConfig::default()
    };
    let edges = if quick { 32 } else { 256 };
    let mut server = match Server::start(
        magic_workloads::programs::ancestor(),
        magic_workloads::chain(edges),
        "127.0.0.1:0",
        config,
    ) {
        Ok(server) => server,
        Err(e) => return fail(format!("server start: {e}")),
    };
    let addr = server.addr();

    // Warm one view so the writer's per-update cost includes live
    // maintenance (the serving write path, not a bare insert).
    let mut warm = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => return fail(format!("connect: {e}")),
    };
    if let Err(e) = warm.query(&format!("a({}, Y)", magic_workloads::node(0))) {
        return fail(format!("warm query: {e}"));
    }

    // Closed-loop capacity estimate: one client, acked inserts back to
    // back — the writer's sustainable service rate.
    let warm_ops = if quick { 20 } else { 60 };
    let start = Instant::now();
    for i in 0..warm_ops {
        if let Err(e) = warm.insert(&format!("par(warm{i}, warm{i}x)")) {
            return fail(format!("warm insert: {e}"));
        }
    }
    let per_op = start.elapsed().as_secs_f64() / warm_ops as f64;
    let capacity = 1.0 / per_op;

    // Overload phase: each paced updater sleeps `interval` before each
    // op, so the aggregate *offered* rate targets 2x capacity.  Facts
    // are unique per (writer, op), so acked/shed partition cleanly.
    let interval = per_op * OVERLOAD_WRITERS as f64 / 2.0;
    let ops_per_writer = if quick { 25 } else { 100 };
    let start = Instant::now();
    let writers: Vec<_> = (0..OVERLOAD_WRITERS)
        .map(|w| {
            std::thread::spawn(move || -> Result<(Vec<f64>, usize), String> {
                let mut client =
                    Client::connect(addr).map_err(|e| format!("updater connect: {e}"))?;
                let mut served = Vec::new();
                let mut shed = 0usize;
                for i in 0..ops_per_writer {
                    std::thread::sleep(std::time::Duration::from_secs_f64(interval));
                    let sent = Instant::now();
                    match client.insert(&format!("par(ow{w}a{i}, ow{w}b{i})")) {
                        Ok(_) => served.push(sent.elapsed().as_secs_f64()),
                        Err(ClientError::Busy { .. }) => shed += 1,
                        Err(e) => return Err(format!("updater {w}: {e}")),
                    }
                }
                Ok((served, shed))
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    let mut shed = 0usize;
    let mut failure: Option<String> = None;
    for writer in writers {
        match writer.join().map_err(|_| "updater panicked".to_string()) {
            Ok(Ok((mut sample, s))) => {
                latencies.append(&mut sample);
                shed += s;
            }
            Ok(Err(e)) => failure = Some(e),
            Err(e) => failure = Some(e),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = Client::connect(addr)
        .map_err(|e| format!("post-storm connect: {e}"))
        .and_then(|mut c| c.stats().map_err(|e| format!("post-storm stats: {e}")));
    server.shutdown();
    if let Some(message) = failure {
        return fail(message);
    }
    let stats = match stats {
        Ok(stats) => stats,
        Err(message) => return fail(message),
    };

    let attempted = OVERLOAD_WRITERS * ops_per_writer;
    let acked = latencies.len();
    let p50 = percentile_ms(&mut latencies, 50.0);
    let p99 = percentile_ms(&mut latencies, 99.0);
    let mut cell = Cell::new(
        "overload",
        Outcome::Ok {
            wall_secs: elapsed,
            samples: attempted,
            answers: 0,
            iterations: 0,
            rule_firings: 0,
            facts_derived: 0,
            duplicate_derivations: 0,
            join_probes: 0,
        },
    );
    cell.extra = format!(
        ", \"writers\": {OVERLOAD_WRITERS}, \"queue_depth\": {OVERLOAD_QUEUE_DEPTH}, \
         \"capacity_ops_per_sec\": {capacity:.0}, \"acked\": {acked}, \"shed\": {shed}, \
         \"shed_rate\": {:.3}, \"served_p50_ms\": {p50:.3}, \"served_p99_ms\": {p99:.3}, \
         \"stats_shed_updates\": {}",
        shed as f64 / attempted as f64,
        stats.shed_updates,
    );
    cell
}

/// A scratch directory for one durable cell, wiped before use and on
/// drop so repeated report runs never see each other's files.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("magic-bench-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create bench scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The fsync policies the `durable_append` scenario prices, with the
/// cell labels they render under.
const APPEND_POLICIES: [(&str, FsyncPolicy); 3] = [
    ("always", FsyncPolicy::Always),
    ("every8", FsyncPolicy::EveryN(8)),
    ("never", FsyncPolicy::Never),
];

/// Measure WAL append throughput under one fsync policy: the write-path
/// cost a serving ack pays for durability.  Each sample resets the log
/// and appends `frames` batches of four updates (the min over samples
/// is reported, like every other cell); `appends_per_sec` in the extra
/// fields normalizes across policies.
fn measure_durable_append(label: &str, policy: FsyncPolicy, quick: bool) -> Cell {
    let frames: u64 = if quick { 128 } else { 512 };
    let scratch = ScratchDir::new(&format!("append-{label}"));
    let mut wal = match Wal::open(scratch.0.join("wal.log"), policy) {
        Ok(wal) => wal,
        Err(e) => {
            return Cell::new(
                label,
                Outcome::Error {
                    message: e.to_string(),
                },
            )
        }
    };
    // One representative small batch: two inserts, two retracts.
    let pair = |a: &str, b: &str| Fact::plain("par", vec![Value::sym(a), Value::sym(b)]);
    let batch = vec![
        Update::Insert(pair("bench_a", "bench_b")),
        Update::Insert(pair("bench_b", "bench_c")),
        Update::Retract(pair("bench_a", "bench_b")),
        Update::Retract(pair("bench_b", "bench_c")),
    ];

    let budget = Instant::now();
    let mut best = f64::INFINITY;
    let mut samples = 0usize;
    let mut wal_bytes = 0u64;
    while samples < 200 && (samples == 0 || budget.elapsed().as_secs_f64() <= 3.0) {
        if let Err(e) = wal.reset() {
            return Cell::new(
                label,
                Outcome::Error {
                    message: e.to_string(),
                },
            );
        }
        let start = Instant::now();
        for seq in 1..=frames {
            if let Err(e) = wal.append(seq, &batch) {
                return Cell::new(
                    label,
                    Outcome::Error {
                        message: e.to_string(),
                    },
                );
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
        wal_bytes = wal.bytes();
        samples += 1;
    }

    let mut cell = Cell::new(
        label,
        Outcome::Ok {
            wall_secs: best,
            samples,
            answers: 0,
            iterations: 0,
            rule_firings: 0,
            facts_derived: 0,
            duplicate_derivations: 0,
            join_probes: 0,
        },
    );
    cell.extra = format!(
        ", \"frames\": {frames}, \"updates_per_frame\": {}, \
         \"appends_per_sec\": {:.0}, \"wal_bytes\": {wal_bytes}",
        batch.len(),
        frames as f64 / best,
    );
    cell
}

/// Build a durable store holding the ancestor seed plus `total` logged
/// single-insert frames, checkpointed so that exactly `tail` frames
/// remain in the WAL.  `tail == total` means the checkpoint is the
/// initial (seed-only) one and the whole stream must replay.
fn build_recover_store(
    dir: &std::path::Path,
    total: u64,
    tail: u64,
) -> Result<(), magic_durable::DurableError> {
    let program = magic_workloads::programs::ancestor();
    let mut edb = magic_storage::Database::new();
    for i in 0..16 {
        edb.insert_pair(
            "par",
            &magic_workloads::node(i),
            &magic_workloads::node(i + 1),
        );
    }
    let config = DurableConfig::new(dir)
        .with_fsync(FsyncPolicy::Never)
        .with_checkpoint_every(0);
    let mut store = DurableStore::open(&config)?;
    // Writes the initial seed checkpoint, so recovery later never
    // mutates the store (a mutating recovery would not be repeatable).
    let mut db = store
        .recover(&program, ViewCatalog::new(Strategy::MagicSets), &edb)?
        .db;
    for i in 0..total {
        let fact = Fact::plain(
            "par",
            vec![
                Value::sym(&format!("r{i}")),
                Value::sym(&format!("r{}", i + 1)),
            ],
        );
        db.insert_fact(&fact);
        store.log_batch(&[Update::Insert(fact)])?;
        if total - (i + 1) == tail && tail < total {
            store.checkpoint(&db, &[])?;
        }
    }
    store.sync()?;
    Ok(())
}

/// Measure recovery wall time over one prepared store: open + recover,
/// min over repeated samples.  Both stores of the scenario hold the
/// *same* final database; only the checkpoint age differs, so the wall
/// gap is purely the replay debt.
fn measure_durable_recover(label: &str, total: u64, tail: u64) -> Cell {
    let scratch = ScratchDir::new(&format!("recover-{label}"));
    if let Err(e) = build_recover_store(&scratch.0, total, tail) {
        return Cell::new(
            label,
            Outcome::Error {
                message: e.to_string(),
            },
        );
    }
    let program = magic_workloads::programs::ancestor();
    let config = DurableConfig::new(&scratch.0).with_fsync(FsyncPolicy::Never);

    let budget = Instant::now();
    let mut best = f64::INFINITY;
    let mut samples = 0usize;
    let mut replayed = 0u64;
    let mut wal_bytes = 0u64;
    while samples < 200 && (samples == 0 || budget.elapsed().as_secs_f64() <= 3.0) {
        let start = Instant::now();
        let mut store = match DurableStore::open(&config) {
            Ok(store) => store,
            Err(e) => {
                return Cell::new(
                    label,
                    Outcome::Error {
                        message: e.to_string(),
                    },
                )
            }
        };
        let recovered = match store.recover(
            &program,
            ViewCatalog::new(Strategy::MagicSets),
            &magic_storage::Database::new(),
        ) {
            Ok(recovered) => recovered,
            Err(e) => {
                return Cell::new(
                    label,
                    Outcome::Error {
                        message: e.to_string(),
                    },
                )
            }
        };
        best = best.min(start.elapsed().as_secs_f64());
        replayed = recovered.replayed_frames;
        wal_bytes = store.wal_bytes();
        if !recovered.restored_from_checkpoint {
            return Cell::new(
                label,
                Outcome::Error {
                    message: "recover store lost its checkpoint".into(),
                },
            );
        }
        samples += 1;
    }

    let mut cell = Cell::new(
        label,
        Outcome::Ok {
            wall_secs: best,
            samples,
            answers: 0,
            iterations: 0,
            rule_firings: 0,
            facts_derived: 0,
            duplicate_derivations: 0,
            join_probes: 0,
        },
    );
    cell.extra = format!(", \"replayed_frames\": {replayed}, \"wal_bytes\": {wal_bytes}");
    cell
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Enforce the scheduler's determinism contract while the report is
/// generated: a parallel cell that succeeded must match its
/// single-threaded twin on every counter, bit for bit.
fn assert_counters_pinned(scenario: &str, single: &Outcome, parallel: &Outcome) {
    if let (
        Outcome::Ok {
            answers: a1,
            rule_firings: f1,
            facts_derived: d1,
            duplicate_derivations: u1,
            join_probes: p1,
            iterations: i1,
            ..
        },
        Outcome::Ok {
            answers: a2,
            rule_firings: f2,
            facts_derived: d2,
            duplicate_derivations: u2,
            join_probes: p2,
            iterations: i2,
            ..
        },
    ) = (single, parallel)
    {
        assert!(
            (a1, f1, d1, u1, p1, i1) == (a2, f2, d2, u2, p2, i2),
            "{scenario}: parallel counters diverged from single-threaded \
             (answers {a1}/{a2}, firings {f1}/{f2}, facts {d1}/{d2}, \
             duplicates {u1}/{u2}, probes {p1}/{p2}, iterations {i1}/{i2})"
        );
    }
}

fn render(scenarios: &[(String, Vec<Cell>)], baseline: Option<&str>, engine: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"pr\": 10,");
    let _ = writeln!(out, "  \"engine\": \"{}\",", json_escape(engine));
    let _ = writeln!(
        out,
        "  \"generated_by\": \"cargo run --release -p magic-bench --bin perf_report\","
    );
    if let Some(cmp) = baseline {
        out.push_str(cmp);
    }
    out.push_str("  \"scenarios\": [\n");
    for (si, (name, cells)) in scenarios.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", json_escape(name));
        out.push_str("      \"strategies\": [\n");
        for (ci, cell) in cells.iter().enumerate() {
            let comma = if ci + 1 == cells.len() { "" } else { "," };
            match &cell.outcome {
                Outcome::Ok {
                    wall_secs,
                    samples,
                    answers,
                    iterations,
                    rule_firings,
                    facts_derived,
                    duplicate_derivations,
                    join_probes,
                } => {
                    let _ = writeln!(
                        out,
                        "        {{\"strategy\": \"{}\", \"status\": \"ok\", \
                         \"wall_secs\": {:.6}, \"samples\": {samples}, \"answers\": {answers}, \
                         \"iterations\": {iterations}, \"rule_firings\": {rule_firings}, \
                         \"facts_derived\": {facts_derived}, \
                         \"duplicate_derivations\": {duplicate_derivations}, \
                         \"join_probes\": {join_probes}{}}}{comma}",
                        cell.label, wall_secs, cell.extra,
                    );
                }
                Outcome::Skipped { reason } => {
                    let _ = writeln!(
                        out,
                        "        {{\"strategy\": \"{}\", \"status\": \"skipped\", \
                         \"reason\": \"{}\"}}{comma}",
                        cell.label,
                        json_escape(reason),
                    );
                }
                Outcome::Error { message } => {
                    let _ = writeln!(
                        out,
                        "        {{\"strategy\": \"{}\", \"status\": \"error\", \
                         \"error\": \"{}\"}}{comma}",
                        cell.label,
                        json_escape(message),
                    );
                }
            }
        }
        out.push_str("      ]\n");
        let comma = if si + 1 == scenarios.len() { "" } else { "," };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  ]\n}\n");
    out
}

/// One successful cell as read back out of a previous snapshot: the wall
/// and the six evaluation counters, in the order [`assert_counters_pinned`]
/// compares them (answers, iterations, rule_firings, facts_derived,
/// duplicate_derivations, join_probes).
struct BaselineCell {
    wall_secs: f64,
    counters: [usize; 6],
}

/// Pull one numeric `"key": <x>` field out of a single rendered cell line.
fn cell_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Pull the (scenario, strategy) cell out of a previous snapshot.  A
/// 40-line JSON parser would be overkill for a file whose format we
/// control ([`render`] emits one line per cell); a line scan is exact for
/// it.  Returns `None` for cells the baseline skipped or errored.
fn baseline_cell(snapshot: &str, scenario: &str, strategy: &str) -> Option<BaselineCell> {
    let mut in_scenario = false;
    for line in snapshot.lines() {
        if line.contains("\"name\":") {
            in_scenario = line.contains(&format!("\"{scenario}\""));
        }
        if in_scenario && line.contains(&format!("\"strategy\": \"{strategy}\"")) {
            let wall_secs = cell_field(line, "wall_secs")?;
            let keys = [
                "answers",
                "iterations",
                "rule_firings",
                "facts_derived",
                "duplicate_derivations",
                "join_probes",
            ];
            let mut counters = [0usize; 6];
            for (slot, key) in counters.iter_mut().zip(keys) {
                *slot = cell_field(line, key)? as usize;
            }
            return Some(BaselineCell {
                wall_secs,
                counters,
            });
        }
    }
    None
}

/// The host-variance guard: a cell whose wall regressed more than 1.3x
/// against the baseline snapshot *while every evaluation counter stayed
/// bit-identical* is annotated `"variance_suspect": true`.  Identical
/// counters prove the engine did exactly the same work, so the wall moved
/// because of the host (CPU contention, frequency scaling, cache
/// pollution from a noisy neighbor), not an engine change.  Counter
/// drift, by contrast, is a real behavioral change and is left for the
/// reader — and the CI counter-pinning checks — to judge.
fn annotate_variance_suspects(results: &mut [(String, Vec<Cell>)], snapshot: &str) {
    for (name, cells) in results.iter_mut() {
        for cell in cells.iter_mut() {
            let Outcome::Ok {
                wall_secs,
                answers,
                iterations,
                rule_firings,
                facts_derived,
                duplicate_derivations,
                join_probes,
                ..
            } = &cell.outcome
            else {
                continue;
            };
            let Some(base) = baseline_cell(snapshot, name, &cell.label) else {
                continue;
            };
            let counters_identical = base.counters
                == [
                    *answers,
                    *iterations,
                    *rule_firings,
                    *facts_derived,
                    *duplicate_derivations,
                    *join_probes,
                ];
            if counters_identical && *wall_secs > base.wall_secs * 1.3 {
                cell.extra.push_str(", \"variance_suspect\": true");
            }
        }
    }
}

/// The oracle's answer rows for `pred`: its facts' value tuples.
fn oracle_rows(oracle: BTreeSet<Fact>, pred: &str) -> BTreeSet<Vec<Value>> {
    oracle
        .into_iter()
        .filter(|f| f.pred == PredName::plain(pred))
        .map(|f| f.values)
        .collect()
}

/// The stratified scenario roster, each paired with the answer rows its
/// plain-Rust oracle expects for the scenario's query.
fn stratified_scenarios(quick: bool) -> Vec<(Scenario, BTreeSet<Vec<Value>>)> {
    let (game, bom, paths) = if quick {
        (
            win_lose_game(16, 36),
            bom_rollup(4, 4),
            shortest_hops(8, 16, 4),
        )
    } else {
        (
            win_lose_game(128, 300),
            bom_rollup(12, 8),
            shortest_hops(24, 80, 10),
        )
    };
    let game_rows = oracle_rows(magic_workloads::win_lose_oracle(&game.database), "win");
    let bom_rows = oracle_rows(magic_workloads::bom_oracle(&bom.database), "total");
    let path_rows = oracle_rows(
        magic_workloads::shortest_oracle(&paths.database),
        "shortest",
    );
    vec![(game, game_rows), (bom, bom_rows), (paths, path_rows)]
}

/// The oracle gate for stratified cells: every strategy the planner
/// accepts must produce exactly the oracle's answer rows.  Typed refusals
/// (counting safety, stratification, the guarded-feature policy) pass
/// through — they become skipped cells — but a wrong answer set aborts
/// the report: an ok stratified cell certifies semantics, not just wall
/// time.
fn assert_oracle(scenario: &Scenario, expected: &BTreeSet<Vec<Value>>) {
    for strategy in Strategy::ALL {
        match scenario.run(strategy) {
            Ok(result) => assert!(
                result.answers == *expected,
                "{}: {} answers diverge from the oracle ({} vs {} rows)",
                scenario.name,
                strategy.short_name(),
                result.answers.len(),
                expected.len()
            ),
            Err(
                PlanError::CountingUnsafe { .. }
                | PlanError::Unstratifiable { .. }
                | PlanError::GuardedUnsupported { .. },
            ) => {}
            Err(e) => panic!("{}: {} failed: {e}", scenario.name, strategy.short_name()),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_PR10.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut quick = false;
    let mut engine =
        "parallel-merge-cow+serve+durable+overload+pipelined-shards+stratified".to_string();
    let mut filter: Option<String> = None;
    let mut strategies: Vec<String> = Vec::new();
    let mut par_threads: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--baseline" => {
                baseline_path = Some(it.next().expect("--baseline needs a path").clone())
            }
            "--engine" => engine = it.next().expect("--engine needs a name").clone(),
            "--filter" => filter = Some(it.next().expect("--filter needs a substring").clone()),
            "--strategy" => strategies.push(it.next().expect("--strategy needs a name").clone()),
            "--threads" => {
                par_threads = Some(
                    it.next()
                        .expect("--threads needs a count")
                        .parse()
                        .expect("--threads needs a number"),
                )
            }
            "--quick" => quick = true,
            other => panic!("unknown argument: {other}"),
        }
    }
    // The parallel leg's thread count: explicit flag, else available
    // parallelism.  A resolved count of 1 skips the parallel legs (the
    // single-threaded cells already cover that machine).
    let par_threads =
        par_threads.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from));

    let mut scenarios: Vec<Scenario> = if quick {
        vec![
            ancestor_chain(64),
            same_generation(2, 4),
            nested_same_generation(2, 4),
            list_reverse(8),
        ]
    } else {
        vec![
            ancestor_chain(1024),
            same_generation(6, 8),
            nested_same_generation(4, 6),
            list_reverse(64),
            // Large-scale stress cases: an 8192-edge chain (linear
            // strategies only, see skip_reason) and a 64x64
            // same-generation grid.
            ancestor_chain(8192),
            same_generation(64, 64),
        ]
    };

    // The stratified families join the classic roster; their oracle's
    // expected answer rows are kept aside and asserted before each one
    // is measured.
    let mut oracle_expected: BTreeMap<String, BTreeSet<Vec<Value>>> = BTreeMap::new();
    for (scenario, expected) in stratified_scenarios(quick) {
        oracle_expected.insert(scenario.name.clone(), expected);
        scenarios.push(scenario);
    }

    let mut results: Vec<(String, Vec<Cell>)> = Vec::new();

    // The durable cells run FIRST, while the process-global value arena
    // is still pristine: checkpoint capture/install serializes the whole
    // arena, so running them after the classic scenarios would charge
    // every recovery sample for the millions of values those scenarios
    // interned — a bench-process artifact no real server restart pays.
    // They are appended to `results` after the other scenarios so the
    // report keeps its historical ordering.
    let mut durable_results: Vec<(String, Vec<Cell>)> = Vec::new();
    let durable_append_name = "durable_append/wal";
    let skip_durable = |name: &str, strategies: &[String], labels: &[&str]| {
        if let Some(f) = &filter {
            if !name.contains(f.as_str()) {
                return true;
            }
        }
        !strategies.is_empty() && !strategies.iter().any(|s| labels.contains(&s.as_str()))
    };
    if !skip_durable(
        durable_append_name,
        &strategies,
        &["always", "every8", "never"],
    ) {
        eprintln!("scenario {durable_append_name}");
        let mut cells = Vec::new();
        for (label, policy) in APPEND_POLICIES {
            let cell = measure_durable_append(label, policy, quick);
            match &cell.outcome {
                Outcome::Ok {
                    wall_secs, samples, ..
                } => eprintln!(
                    "  {:<12} {wall_secs:>12.6}s  {samples} samples{}",
                    cell.label, cell.extra
                ),
                Outcome::Skipped { .. } => eprintln!("  {:<12} skipped", cell.label),
                Outcome::Error { message } => eprintln!("  {:<12} error: {message}", cell.label),
            }
            cells.push(cell);
        }
        durable_results.push((durable_append_name.to_string(), cells));
    }

    // The recovery race: same final database, same logged history —
    // only the checkpoint's age differs.  `ckpt_tail` pays for a small
    // WAL tail, `full_replay` for the whole stream; the wall gap is the
    // bound the checkpoint cadence buys.
    let recover_total: u64 = if quick { 1_000 } else { 10_000 };
    let recover_tail: u64 = if quick { 8 } else { 32 };
    let durable_recover_name = format!("durable_recover/{recover_total}");
    if !skip_durable(
        &durable_recover_name,
        &strategies,
        &["ckpt_tail", "full_replay"],
    ) {
        eprintln!("scenario {durable_recover_name}");
        let mut cells = Vec::new();
        for (label, tail) in [("ckpt_tail", recover_tail), ("full_replay", recover_total)] {
            let cell = measure_durable_recover(label, recover_total, tail);
            match &cell.outcome {
                Outcome::Ok {
                    wall_secs, samples, ..
                } => eprintln!(
                    "  {:<12} {wall_secs:>12.6}s  {samples} samples{}",
                    cell.label, cell.extra
                ),
                Outcome::Skipped { .. } => eprintln!("  {:<12} skipped", cell.label),
                Outcome::Error { message } => eprintln!("  {:<12} error: {message}", cell.label),
            }
            cells.push(cell);
        }
        durable_results.push((durable_recover_name, cells));
    }

    for scenario in &scenarios {
        if let Some(f) = &filter {
            if !scenario.name.contains(f.as_str()) {
                continue;
            }
        }
        eprintln!("scenario {}", scenario.name);
        let oracle = oracle_expected.get(&scenario.name);
        if let Some(expected) = oracle {
            assert_oracle(scenario, expected);
        }
        let mut cells = Vec::new();
        for strategy in Strategy::ALL {
            if !strategies.is_empty() && !strategies.iter().any(|s| s == strategy.short_name()) {
                continue;
            }
            eprint!("  {:<10}", strategy.short_name());
            let outcome = measure(scenario, strategy, quick, 1);
            if let (Some(expected), Outcome::Ok { answers, .. }) = (oracle, &outcome) {
                assert_eq!(
                    *answers,
                    expected.len(),
                    "{}: {} answer count diverged from the oracle",
                    scenario.name,
                    strategy.short_name()
                );
            }
            match &outcome {
                Outcome::Ok {
                    wall_secs,
                    join_probes,
                    ..
                } => eprintln!(" {wall_secs:>12.6}s  probes {join_probes}"),
                Outcome::Skipped { .. } => eprintln!(" skipped"),
                Outcome::Error { message } => eprintln!(" error: {message}"),
            }
            let mut cell = Cell::new(strategy.short_name(), outcome);
            cell.extra = ", \"threads\": 1".to_string();
            if oracle.is_some() {
                cell.extra.push_str(", \"oracle_checked\": true");
            }
            let single = cells.len();
            cells.push(cell);
            // The parallel leg: same cell at `par_threads` workers, with
            // the determinism contract asserted — every counter must be
            // bit-identical to the single-threaded twin.
            if par_threads > 1 {
                let label = format!("{}@t{}", strategy.short_name(), par_threads);
                eprint!("  {label:<10}");
                let outcome = measure(scenario, strategy, quick, par_threads);
                match &outcome {
                    Outcome::Ok {
                        wall_secs,
                        join_probes,
                        ..
                    } => eprintln!(" {wall_secs:>12.6}s  probes {join_probes}"),
                    Outcome::Skipped { .. } => eprintln!(" skipped"),
                    Outcome::Error { message } => eprintln!(" error: {message}"),
                }
                assert_counters_pinned(&scenario.name, &cells[single].outcome, &outcome);
                let mut cell = Cell::new(label, outcome);
                cell.extra = format!(", \"threads\": {par_threads}");
                if oracle.is_some() {
                    cell.extra.push_str(", \"oracle_checked\": true");
                }
                cells.push(cell);
            }
        }
        results.push((scenario.name.clone(), cells));
    }

    for scenario in incr_scenarios(quick) {
        if let Some(f) = &filter {
            if !scenario.name.contains(f.as_str()) {
                continue;
            }
        }
        if !strategies.is_empty() && !strategies.iter().any(|s| s == "incr" || s == "scratch") {
            continue;
        }
        eprintln!("scenario {}", scenario.name);
        let (incr_cell, scratch_cell) = measure_incr(&scenario, quick);
        for cell in [&incr_cell, &scratch_cell] {
            match &cell.outcome {
                Outcome::Ok {
                    wall_secs,
                    join_probes,
                    ..
                } => eprintln!(
                    "  {:<10} {wall_secs:>12.6}s  probes {join_probes}{}",
                    cell.label, cell.extra
                ),
                Outcome::Skipped { .. } => eprintln!("  {:<10} skipped", cell.label),
                Outcome::Error { message } => {
                    eprintln!("  {:<10} error: {message}", cell.label)
                }
            }
        }
        results.push((scenario.name.clone(), vec![incr_cell, scratch_cell]));
    }

    for scenario in serve_scenarios(quick) {
        if let Some(f) = &filter {
            if !scenario.name.contains(f.as_str()) {
                continue;
            }
        }
        if !strategies.is_empty()
            && !strategies
                .iter()
                .any(|s| s == "serve" || s == "serve_quiet")
        {
            continue;
        }
        eprintln!("scenario {}", scenario.name);
        let cells = measure_serve(&scenario);
        for cell in &cells {
            match &cell.outcome {
                Outcome::Ok {
                    wall_secs, samples, ..
                } => eprintln!(
                    "  {:<12} {wall_secs:>12.6}s  {samples} queries{}",
                    cell.label, cell.extra
                ),
                Outcome::Skipped { .. } => eprintln!("  {:<12} skipped", cell.label),
                Outcome::Error { message } => {
                    eprintln!("  {:<12} error: {message}", cell.label)
                }
            }
        }
        results.push((scenario.name.clone(), cells));
    }

    let pipelined_name = format!(
        "serve_pipelined/ancestor/chain/{}",
        if quick { 32 } else { 256 }
    );
    let pipelined_wanted = filter
        .as_ref()
        .is_none_or(|f| pipelined_name.contains(f.as_str()))
        && (strategies.is_empty() || strategies.iter().any(|s| s == "pipelined"));
    if pipelined_wanted {
        eprintln!("scenario {pipelined_name}");
        let cells = measure_serve_pipelined(quick);
        for cell in &cells {
            match &cell.outcome {
                Outcome::Ok {
                    wall_secs, samples, ..
                } => eprintln!(
                    "  {:<20} {wall_secs:>12.6}s  {samples} queries{}",
                    cell.label, cell.extra
                ),
                Outcome::Skipped { .. } => eprintln!("  {:<20} skipped", cell.label),
                Outcome::Error { message } => {
                    eprintln!("  {:<20} error: {message}", cell.label)
                }
            }
        }
        results.push((pipelined_name, cells));
    }

    for views in PUBLISH_VIEW_COUNTS {
        let name = format!("serve_publish/views/{views}");
        if let Some(f) = &filter {
            if !name.contains(f.as_str()) {
                continue;
            }
        }
        if !strategies.is_empty() && !strategies.iter().any(|s| s == "publish") {
            continue;
        }
        eprintln!("scenario {name}");
        let cell = measure_publish(views, quick);
        match &cell.outcome {
            Outcome::Ok {
                wall_secs, samples, ..
            } => eprintln!(
                "  {:<12} {wall_secs:>12.6}s  {samples} publishes{}",
                cell.label, cell.extra
            ),
            Outcome::Skipped { .. } => eprintln!("  {:<12} skipped", cell.label),
            Outcome::Error { message } => eprintln!("  {:<12} error: {message}", cell.label),
        }
        results.push((name, vec![cell]));
    }

    let overload_name = format!("serve_overload/queue/{OVERLOAD_QUEUE_DEPTH}");
    let overload_wanted = filter
        .as_ref()
        .is_none_or(|f| overload_name.contains(f.as_str()))
        && (strategies.is_empty() || strategies.iter().any(|s| s == "overload"));
    if overload_wanted {
        eprintln!("scenario {overload_name}");
        let cell = measure_serve_overload(quick);
        match &cell.outcome {
            Outcome::Ok {
                wall_secs, samples, ..
            } => eprintln!(
                "  {:<12} {wall_secs:>12.6}s  {samples} attempts{}",
                cell.label, cell.extra
            ),
            Outcome::Skipped { .. } => eprintln!("  {:<12} skipped", cell.label),
            Outcome::Error { message } => eprintln!("  {:<12} error: {message}", cell.label),
        }
        results.push((overload_name, vec![cell]));
    }

    results.append(&mut durable_results);

    let baseline = baseline_path.map(|path| {
        let snapshot = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        (path, snapshot)
    });
    if let Some((_, snapshot)) = &baseline {
        annotate_variance_suspects(&mut results, snapshot);
    }
    let comparison = baseline.map(|(path, snapshot)| {
        // Every entry (the baseline name included) goes through one
        // comma-join so the object stays valid JSON when no cell matches
        // the snapshot.
        let mut lines = vec![format!("    \"baseline\": \"{}\"", json_escape(&path))];
        for (name, cells) in &results {
            for cell in cells {
                if let Outcome::Ok { wall_secs, .. } = cell.outcome {
                    let strategy = cell.label.as_str();
                    if let Some(base) = baseline_cell(&snapshot, name, strategy) {
                        lines.push(format!(
                            "    \"{}/{}\": {{\"before_secs\": {:.6}, \"after_secs\": {:.6}, \"speedup\": {:.2}}}",
                            json_escape(name),
                            strategy,
                            base.wall_secs,
                            wall_secs,
                            base.wall_secs / wall_secs
                        ));
                    }
                }
            }
        }
        let mut cmp = String::from("  \"speedup_vs_baseline\": {\n");
        cmp.push_str(&lines.join(",\n"));
        cmp.push_str("\n  },\n");
        cmp
    });

    let json = render(&results, comparison.as_deref(), &engine);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
}
