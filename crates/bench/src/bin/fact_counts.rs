//! Regenerate the paper's fact-count accounting (Sections 1, 9 and 11):
//! for each benchmark scenario and each strategy, the number of answers,
//! answer facts, subquery (magic/counting) facts, supplementary facts, rule
//! firings and iterations.
//!
//! The shapes to look for:
//!
//! * the bottom-up baselines derive the *entire* derived relation while the
//!   rewrites derive only the query-reachable part (Section 1);
//! * the magic facts are a small fraction of the derived facts (Section 9's
//!   discussion of reference \[5\]);
//! * GSMS/GSC trade extra supplementary facts for fewer duplicate firings
//!   than GMS/GC (Section 11);
//! * on the chain, magic derives O(n²) ancestor facts for a query with n
//!   answers — the gap to specialised transitive-closure methods that the
//!   paper concedes in Section 9.
//!
//! Run with `cargo run --release -p magic-bench --bin fact_counts`.

use magic_bench::{
    ancestor_chain, ancestor_tree, list_reverse, nested_same_generation, same_generation, Scenario,
};
use magic_core::planner::Strategy;

/// Strategies that are known to work on the scenario.
///
/// * The counting strategies diverge on the nested same-generation workload
///   (its per-level same-generation relation is cyclic, so derivation paths
///   grow without bound — Section 10).
/// * The counting strategies' numeric derivation-path encoding (`K·m + i`,
///   `H·t + j`) only represents ~60 derivation levels in an `i64`, so they
///   are excluded from the deepest chain (see DESIGN.md, "index encodings").
fn applicable(scenario: &Scenario) -> Vec<Strategy> {
    let magic_only =
        scenario.name.starts_with("nested_sg") || scenario.name == "ancestor/chain/256";
    if magic_only {
        vec![
            Strategy::NaiveBottomUp,
            Strategy::SemiNaiveBottomUp,
            Strategy::MagicSets,
            Strategy::SupplementaryMagicSets,
        ]
    } else {
        Strategy::ALL.to_vec()
    }
}

fn row(scenario: &Scenario, strategy: Strategy) {
    match scenario.run(strategy) {
        Ok(result) => {
            println!(
                "{:<28} {:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>6}",
                scenario.name,
                strategy.short_name(),
                result.answers.len(),
                result.accounting.answer_facts,
                result.accounting.subquery_facts,
                result.accounting.supplementary_facts,
                result.stats.rule_firings,
                result.stats.iterations
            );
        }
        Err(e) => {
            println!(
                "{:<28} {:<10} (failed: {e})",
                scenario.name,
                strategy.short_name()
            );
        }
    }
}

fn main() {
    println!(
        "{:<28} {:<10} {:>8} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "scenario", "strategy", "answers", "ans.facts", "subquery", "suppl.", "firings", "iters"
    );
    let scenarios = vec![
        ancestor_chain(48),
        ancestor_chain(256),
        ancestor_tree(8),
        same_generation(3, 8),
        nested_same_generation(3, 6),
        list_reverse(24),
    ];
    for scenario in &scenarios {
        for strategy in applicable(scenario) {
            // The unrewritten baselines cannot evaluate the reverse program
            // (it is not range-restricted without the query bindings) —
            // that failure is itself part of the story (Section 10).
            row(scenario, strategy);
        }
        println!();
    }
}
