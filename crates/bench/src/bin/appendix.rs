//! Regenerate the paper's symbolic artifacts: the adorned rule sets
//! (Appendix A.2) and the rewritten rule sets for every method
//! (Appendix A.3–A.6, Examples 3–8), for each of the four benchmark
//! problems.
//!
//! Run with `cargo run -p magic-bench --bin appendix`.

use magic_core::adorn::adorn;
use magic_core::planner::{Planner, Strategy};
use magic_core::safety::analyze;
use magic_core::sip_builder::SipStrategy;
use magic_datalog::{Program, Query};
use magic_workloads::{list_term, programs};

fn section(title: &str) {
    println!("\n=== {title} ===");
}

fn show_problem(name: &str, program: &Program, query: &Query) {
    section(&format!("{name}: source program (Appendix A.1)"));
    print!("{program}");
    println!("{query}");

    let adorned = adorn(program, query, SipStrategy::FullLeftToRight)
        .expect("the Appendix programs adorn successfully");
    section(&format!("{name}: adorned rule set (Appendix A.2)"));
    print!("{}", adorned.to_program());
    section(&format!("{name}: safety analysis (Section 10)"));
    println!("{}", analyze(&adorned));

    let strategies: &[(Strategy, &str)] = &[
        (Strategy::MagicSets, "generalized magic sets (Appendix A.3)"),
        (
            Strategy::SupplementaryMagicSets,
            "generalized supplementary magic sets (Appendix A.4)",
        ),
        (Strategy::Counting, "generalized counting (Appendix A.5)"),
        (
            Strategy::SupplementaryCounting,
            "generalized supplementary counting (Appendix A.6)",
        ),
        (
            Strategy::CountingSemijoin,
            "counting + semijoin optimization (Section 8, optimized rule sets)",
        ),
        (
            Strategy::SupplementaryCountingSemijoin,
            "supplementary counting + semijoin optimization",
        ),
    ];
    for (strategy, label) in strategies {
        section(&format!("{name}: {label}"));
        match Planner::new(*strategy).rewrite(program, query) {
            Ok(rewritten) => print!("{}", rewritten.program),
            Err(e) => println!("(not applicable: {e})"),
        }
    }
}

fn main() {
    println!("On the Power of Magic — Appendix reproduction");
    println!("==============================================");

    show_problem(
        "A.1(1) ancestor",
        &programs::ancestor(),
        &programs::ancestor_query("john"),
    );
    show_problem(
        "A.1(2) nonlinear ancestor",
        &programs::nonlinear_ancestor(),
        &programs::ancestor_query("john"),
    );
    show_problem(
        "Example 1 nonlinear same-generation",
        &programs::same_generation(),
        &programs::same_generation_query("john"),
    );
    show_problem(
        "A.1(3) nested same-generation",
        &programs::nested_same_generation(),
        &programs::nested_sg_query("john"),
    );
    show_problem(
        "A.1(4) list reverse",
        &programs::list_reverse(),
        &programs::reverse_query(list_term(3)),
    );
}
