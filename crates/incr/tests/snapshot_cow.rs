//! Publish-cost accounting for catalog snapshots.
//!
//! The serving layer's whole publish path rests on two storage claims
//! (see `magic_storage::cow_clones`):
//!
//! 1. **Idle publish clones nothing.**  Taking a [`ViewSnapshot`] is pure
//!    `Arc` pointer bumps — zero storage units (row pages, dedup shards,
//!    index shards) are deep-copied.
//! 2. **A single-view update pays O(touched units).**  Mutating the live
//!    view while a snapshot pins the old state re-copies only the pages
//!    and shards the new facts land in, never the whole database.
//!
//! The test lives alone in this file on purpose: `cow_clones()` is a
//! process-global counter, so the deltas below are only meaningful when
//! no other test mutates shared relations concurrently.

use magic_core::planner::Strategy;
use magic_datalog::{parse_program, parse_query, Fact, Value};
use magic_incr::{Update, ViewCatalog};
use magic_storage::{cow_clones, Database};

#[test]
fn snapshot_publish_costs_are_bounded_by_touched_units() {
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .unwrap();
    let query = parse_query("anc(n0, Y)").unwrap();

    // A chain long enough that the view's relations hold hundreds of rows
    // spread over dozens of storage units (pages + 16 dedup shards + 16
    // index shards per indexed pattern, per relation): a non-COW publish
    // would have to copy hundreds of units per snapshot.
    const N: usize = 512;
    let mut db = Database::new();
    for i in 0..N {
        db.insert_pair("par", &format!("n{i}"), &format!("n{}", i + 1));
    }

    let mut catalog = ViewCatalog::new(Strategy::MagicSets);
    let key = catalog.materialize(&program, &query, &db).unwrap();
    let full_answers = catalog.answers(&key).unwrap().len();
    assert_eq!(full_answers, N);

    // 1. Idle publish: snapshotting a quiescent view deep-copies nothing.
    let before = cow_clones();
    let frozen = catalog.snapshot_view(&key).unwrap();
    assert_eq!(
        cow_clones() - before,
        0,
        "taking a snapshot must not clone any storage unit"
    );
    assert_eq!(frozen.answers().len(), N);

    // 2. One appended edge while the snapshot pins the old state: the
    //    maintenance resume derives a handful of new facts, and each lands
    //    in at most one page + one dedup shard + a few index shards of its
    //    relation.  The bound below is generous for that (dozens of
    //    units), yet far under the hundreds of units a whole-database copy
    //    would cost — which is exactly the O(changed pages), not O(data),
    //    contract.
    let before = cow_clones();
    let outcome = catalog.apply_all(&[Update::Insert(Fact::plain(
        "par",
        vec![
            Value::sym(&format!("n{N}")),
            Value::sym(&format!("n{}", N + 1)),
        ],
    ))]);
    assert_eq!(outcome.changed, vec![key.clone()]);
    let touched = cow_clones() - before;
    assert!(
        touched > 0,
        "the pinned snapshot forces the write to copy the units it touches"
    );
    assert!(
        touched <= 128,
        "single-fact maintenance cloned {touched} storage units; \
         expected O(touched pages), not a whole-database copy"
    );

    // The snapshot still reads the pre-update fixpoint; a fresh snapshot
    // of the changed view sees the new answer and again costs zero deep
    // copies to take.
    assert_eq!(frozen.answers().len(), N);
    let before = cow_clones();
    let fresh = catalog.snapshot_view(&key).unwrap();
    assert_eq!(cow_clones() - before, 0);
    assert_eq!(fresh.answers().len(), N + 1);

    // 3. Dropping the old snapshot releases its pins: the next update
    //    writes into units it now owns uniquely wherever it touches the
    //    same pages again, so steady-state maintenance under a single live
    //    snapshot stays cheap instead of re-copying per batch.
    drop(frozen);
    let before = cow_clones();
    let outcome = catalog.apply_all(&[Update::Insert(Fact::plain(
        "par",
        vec![
            Value::sym(&format!("n{}", N + 1)),
            Value::sym(&format!("n{}", N + 2)),
        ],
    ))]);
    assert_eq!(outcome.applied, 1);
    let touched_again = cow_clones() - before;
    assert!(
        touched_again <= 128,
        "steady-state maintenance cloned {touched_again} storage units"
    );
}
