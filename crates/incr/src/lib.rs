//! # magic-incr
//!
//! Incremental view maintenance for the *Power of Magic* engine: live
//! insert/retract over materialized (possibly magic-rewritten) program
//! fixpoints, without re-running the fixpoint from scratch.
//!
//! The paper's rewrites produce programs whose bottom-up fixpoint *is* the
//! query answer; serving that answer under a changing extensional database
//! means maintaining the fixpoint, not recomputing it.  This crate provides:
//!
//! * [`MaterializedView`] — a session over one program + database:
//!   construct once, then [`insert`](MaterializedView::insert) /
//!   [`retract`](MaterializedView::retract) / batched
//!   [`apply`](MaterializedView::apply).  Insertions re-enter the engine's
//!   semi-naive loop from a seeded delta window; retractions use exact
//!   per-row derivation counts (see
//!   [`SupportTable`](magic_storage::SupportTable)) where the affected cone
//!   is non-recursive, and delete-and-rederive (DRed, as in the
//!   micro-Datalog lineage of delta-driven engines) where it is not.
//! * [`ViewCatalog`] — many live views keyed by *adorned query binding*
//!   (`anc[bf](john)`), the serving-layer shape: repeated queries with the
//!   same binding share one maintained view, and base-fact updates stream
//!   into every cached view.
//!
//! Correctness is defined against from-scratch evaluation: after any
//! sequence of updates, the maintained database equals
//! `Evaluator::run` over the updated base facts (the oracle the
//! `tests/incremental.rs` suite checks, including retract-then-rederive on
//! cyclic data).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod error;
pub mod view;

pub use catalog::{ApplyAllOutcome, CatalogError, ViewCatalog, ViewSnapshot};
pub use error::IncrError;
pub use view::{ApplyReport, MaintenanceMode, MaterializedView, RetractStrategy, Update};
