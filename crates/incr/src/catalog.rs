//! A catalog of live materialized views, keyed by adorned query binding.
//!
//! The serving shape the ROADMAP's north star needs: plan a query once
//! (rewrite under a strategy), materialize the rewritten program as a
//! [`MaterializedView`], and cache it under the query's *adorned binding
//! key* — the answer predicate, its bound/free adornment, and the bound
//! constants (`anc[bf](john)`).  Repeated queries with the same binding hit
//! the cached view; base-fact updates stream into every cached view through
//! [`ViewCatalog::update_all`].
//!
//! Each cached entry carries exactly one compiled
//! [`Schedule`](magic_datalog::Schedule) (inside its view's fixpoint
//! runner): the stratified shape is computed when the plan is
//! materialized and shared by every subsequent maintenance resume —
//! never rebuilt per update.

use crate::error::IncrError;
use crate::view::{MaterializedView, Update};
use magic_core::planner::{PlanError, Planner, Strategy};
use magic_datalog::{Atom, Program, Query, Value, Variable};
use magic_engine::{answers::project_answers, Limits};
use magic_storage::Database;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors raised by catalog operations.
#[derive(Clone, Debug)]
pub enum CatalogError {
    /// Planning (adornment / rewriting) failed.
    Plan(PlanError),
    /// Materializing or maintaining the view failed.
    Incr(IncrError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Plan(e) => write!(f, "planning error: {e}"),
            CatalogError::Incr(e) => write!(f, "maintenance error: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<PlanError> for CatalogError {
    fn from(e: PlanError) -> Self {
        CatalogError::Plan(e)
    }
}

impl From<IncrError> for CatalogError {
    fn from(e: IncrError) -> Self {
        CatalogError::Incr(e)
    }
}

/// One cached view plus how to read the query's answers back out of it.
#[derive(Clone, Debug)]
struct CatalogEntry {
    view: MaterializedView,
    answer_atom: Atom,
    projection: Vec<Variable>,
}

/// A set of live materialized views keyed by adorned query binding.
///
/// ```
/// use magic_core::planner::Strategy;
/// use magic_datalog::{parse_program, parse_query, Fact, Value};
/// use magic_incr::{Update, ViewCatalog};
/// use magic_storage::Database;
///
/// let program = parse_program(
///     "anc(X, Y) :- par(X, Y).
///      anc(X, Y) :- par(X, Z), anc(Z, Y).",
/// )
/// .unwrap();
/// let query = parse_query("anc(a, Y)").unwrap();
/// let mut db = Database::new();
/// db.insert_pair("par", "a", "b");
///
/// let mut catalog = ViewCatalog::new(Strategy::MagicSets);
/// let key = catalog.materialize(&program, &query, &db).unwrap();
/// assert_eq!(catalog.answers(&key).unwrap().len(), 1);
///
/// let edge = Fact::plain("par", vec![Value::sym("b"), Value::sym("c")]);
/// catalog.update_all(&Update::Insert(edge)).unwrap();
/// assert_eq!(catalog.answers(&key).unwrap().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ViewCatalog {
    strategy: Strategy,
    limits: Limits,
    entries: BTreeMap<String, CatalogEntry>,
}

impl ViewCatalog {
    /// An empty catalog materializing under `strategy`.
    pub fn new(strategy: Strategy) -> ViewCatalog {
        ViewCatalog {
            strategy,
            limits: Limits::default(),
            entries: BTreeMap::new(),
        }
    }

    /// Override the evaluation limits applied to every view.
    pub fn with_limits(mut self, limits: Limits) -> ViewCatalog {
        self.limits = limits;
        self
    }

    /// The catalog's rewrite strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Plan `(program, query)` under the catalog's strategy and
    /// materialize the rewritten program over `edb` — unless a view with
    /// the same adorned binding key *and the same rewritten program* is
    /// already cached, in which case the existing (live, maintained) view
    /// is kept and `edb` is ignored: the cached view's database reflects
    /// every update streamed into it since materialization, which is the
    /// point of the cache.  A cache hit whose stored program differs
    /// (the caller changed the rules) re-materializes over `edb` instead
    /// of silently serving answers for the old rules.  Returns the key.
    pub fn materialize(
        &mut self,
        program: &Program,
        query: &Query,
        edb: &Database,
    ) -> Result<String, CatalogError> {
        let plan = Planner::new(self.strategy)
            .with_limits(self.limits)
            .plan(program, query)?;
        let key = format!("{}@{}", plan.view_binding(), self.strategy.short_name());
        let fresh = match self.entries.get(&key) {
            Some(entry) => entry.view.program() != &plan.program,
            None => true,
        };
        if fresh {
            let mut view = MaterializedView::with_limits(&plan.program, edb, self.limits)?;
            // Index the answer atom's bound positions once: every insert
            // and retract the view applies maintains it from here on, so
            // repeated `answers` calls probe a warm index instead of
            // scanning (and nothing ever rebuilds it).
            view.ensure_answer_index(&plan.answer_atom);
            self.entries.insert(
                key.clone(),
                CatalogEntry {
                    view,
                    answer_atom: plan.answer_atom.clone(),
                    projection: plan.projection.clone(),
                },
            );
        }
        Ok(key)
    }

    /// The view cached under `key`.
    pub fn view(&self, key: &str) -> Option<&MaterializedView> {
        self.entries.get(key).map(|e| &e.view)
    }

    /// Mutable access to the view cached under `key` (for targeted
    /// insert/retract/apply).
    pub fn view_mut(&mut self, key: &str) -> Option<&mut MaterializedView> {
        self.entries.get_mut(key).map(|e| &mut e.view)
    }

    /// The current answers of the query cached under `key`.
    pub fn answers(&self, key: &str) -> Option<BTreeSet<Vec<Value>>> {
        self.entries
            .get(key)
            .map(|e| project_answers(e.view.database(), &e.answer_atom, &e.projection))
    }

    /// Apply one base-fact update to every cached view that can accept it
    /// (views deriving the fact's predicate are skipped — their copy of it
    /// is maintained, not edited).  Returns how many views changed.
    pub fn update_all(&mut self, update: &Update) -> Result<usize, CatalogError> {
        let mut changed = 0;
        for entry in self.entries.values_mut() {
            let result = match update {
                Update::Insert(fact) => entry.view.insert(fact),
                Update::Retract(fact) => entry.view.retract(fact),
            };
            match result {
                Ok(true) => changed += 1,
                Ok(false) | Err(IncrError::NotABasePredicate { .. }) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(changed)
    }

    /// Number of cached views.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no view is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached binding keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &str> + '_ {
        self.entries.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::{parse_program, parse_query};

    #[test]
    fn changed_program_rematerializes_instead_of_serving_stale_rules() {
        let v1 = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let v2 = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let query = parse_query("anc(a, Y)").unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("par", "b", "c");

        let mut catalog = ViewCatalog::new(Strategy::MagicSets);
        let k1 = catalog.materialize(&v1, &query, &db).unwrap();
        assert_eq!(catalog.answers(&k1).unwrap().len(), 1); // only (a, b)

        // Same binding, new rules: the stale view must not be served.
        let k2 = catalog.materialize(&v2, &query, &db).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.answers(&k2).unwrap().len(), 2); // b and c

        // Same binding, same rules: cache hit keeps the live view (with
        // its streamed updates), ignoring the passed database.
        catalog
            .update_all(&Update::Insert(magic_datalog::Fact::plain(
                "par",
                vec![Value::sym("c"), Value::sym("d")],
            )))
            .unwrap();
        let k3 = catalog.materialize(&v2, &query, &Database::new()).unwrap();
        assert_eq!(k2, k3);
        assert_eq!(catalog.answers(&k3).unwrap().len(), 3);
    }
}
