//! A catalog of live materialized views, keyed by adorned query binding.
//!
//! The serving shape the ROADMAP's north star needs: plan a query once
//! (rewrite under a strategy), materialize the rewritten program as a
//! [`MaterializedView`], and cache it under the query's *adorned binding
//! key* — the answer predicate, its bound/free adornment, and the bound
//! constants (`anc[bf](john)`).  Repeated queries with the same binding hit
//! the cached view; base-fact updates stream into every cached view through
//! [`ViewCatalog::update_all`].
//!
//! Each cached entry carries exactly one compiled
//! [`Schedule`](magic_datalog::Schedule) (inside its view's fixpoint
//! runner): the stratified shape is computed when the plan is
//! materialized and shared by every subsequent maintenance resume —
//! never rebuilt per update.

use crate::error::IncrError;
use crate::view::{MaterializedView, Update};
use magic_core::planner::{PlanError, Planner, Strategy};
use magic_datalog::{Atom, Program, Query, Value, Variable};
use magic_engine::{answers::project_answers, Limits};
use magic_storage::Database;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors raised by catalog operations.
#[derive(Clone, Debug)]
pub enum CatalogError {
    /// Planning (adornment / rewriting) failed.
    Plan(PlanError),
    /// Materializing or maintaining the view failed.
    Incr(IncrError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Plan(e) => write!(f, "planning error: {e}"),
            CatalogError::Incr(e) => write!(f, "maintenance error: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<PlanError> for CatalogError {
    fn from(e: PlanError) -> Self {
        CatalogError::Plan(e)
    }
}

impl From<IncrError> for CatalogError {
    fn from(e: IncrError) -> Self {
        CatalogError::Incr(e)
    }
}

/// What a batched [`ViewCatalog::apply_all`] did.
#[derive(Clone, Debug, Default)]
pub struct ApplyAllOutcome {
    /// State-changing applications, summed over all surviving views.
    pub applied: usize,
    /// Views evicted because their maintenance failed, with the error
    /// that condemned each.  The catalog stays internally consistent;
    /// evicted bindings re-materialize on next sight.
    pub evicted: Vec<(String, CatalogError)>,
}

/// One cached view plus how to read the query's answers back out of it.
#[derive(Clone, Debug)]
struct CatalogEntry {
    view: MaterializedView,
    answer_atom: Atom,
    projection: Vec<Variable>,
}

/// A set of live materialized views keyed by adorned query binding.
///
/// ```
/// use magic_core::planner::Strategy;
/// use magic_datalog::{parse_program, parse_query, Fact, Value};
/// use magic_incr::{Update, ViewCatalog};
/// use magic_storage::Database;
///
/// let program = parse_program(
///     "anc(X, Y) :- par(X, Y).
///      anc(X, Y) :- par(X, Z), anc(Z, Y).",
/// )
/// .unwrap();
/// let query = parse_query("anc(a, Y)").unwrap();
/// let mut db = Database::new();
/// db.insert_pair("par", "a", "b");
///
/// let mut catalog = ViewCatalog::new(Strategy::MagicSets);
/// let key = catalog.materialize(&program, &query, &db).unwrap();
/// assert_eq!(catalog.answers(&key).unwrap().len(), 1);
///
/// let edge = Fact::plain("par", vec![Value::sym("b"), Value::sym("c")]);
/// catalog.update_all(&Update::Insert(edge)).unwrap();
/// assert_eq!(catalog.answers(&key).unwrap().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ViewCatalog {
    strategy: Strategy,
    limits: Limits,
    entries: BTreeMap<String, CatalogEntry>,
}

impl ViewCatalog {
    /// An empty catalog materializing under `strategy`.
    pub fn new(strategy: Strategy) -> ViewCatalog {
        ViewCatalog {
            strategy,
            limits: Limits::default(),
            entries: BTreeMap::new(),
        }
    }

    /// Override the evaluation limits applied to every view.
    pub fn with_limits(mut self, limits: Limits) -> ViewCatalog {
        self.limits = limits;
        self
    }

    /// The catalog's rewrite strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Plan `(program, query)` under the catalog's strategy and
    /// materialize the rewritten program over `edb` — unless a view with
    /// the same adorned binding key *and the same rewritten program* is
    /// already cached, in which case the existing (live, maintained) view
    /// is kept and `edb` is ignored: the cached view's database reflects
    /// every update streamed into it since materialization, which is the
    /// point of the cache.  A cache hit whose stored program differs
    /// (the caller changed the rules) re-materializes over `edb` instead
    /// of silently serving answers for the old rules.  Returns the key.
    pub fn materialize(
        &mut self,
        program: &Program,
        query: &Query,
        edb: &Database,
    ) -> Result<String, CatalogError> {
        self.materialize_keyed(program, query, edb)
            .map(|(key, _)| key)
    }

    /// [`ViewCatalog::materialize`], additionally reporting whether a view
    /// was (re)built: `false` means the key was a cache hit on a live view
    /// and the catalog did not change — the serving layer uses this to
    /// skip publishing a fresh (expensive, whole-catalog-clone) snapshot
    /// when two racing first-sight queries both request materialization.
    pub fn materialize_keyed(
        &mut self,
        program: &Program,
        query: &Query,
        edb: &Database,
    ) -> Result<(String, bool), CatalogError> {
        let plan = Planner::new(self.strategy)
            .with_limits(self.limits)
            .plan(program, query)?;
        let key = format!("{}@{}", plan.view_binding(), self.strategy.short_name());
        let fresh = match self.entries.get(&key) {
            Some(entry) => entry.view.program() != &plan.program,
            None => true,
        };
        if fresh {
            let mut view = MaterializedView::with_limits(&plan.program, edb, self.limits)?;
            // Index the answer atom's bound positions once: every insert
            // and retract the view applies maintains it from here on, so
            // repeated `answers` calls probe a warm index instead of
            // scanning (and nothing ever rebuilds it).
            view.ensure_answer_index(&plan.answer_atom);
            self.entries.insert(
                key.clone(),
                CatalogEntry {
                    view,
                    answer_atom: plan.answer_atom.clone(),
                    projection: plan.projection.clone(),
                },
            );
        }
        Ok((key, fresh))
    }

    /// The binding key `materialize` would cache `(program, query)` under,
    /// computed by planning alone — nothing is materialized and the catalog
    /// is not consulted.  The serving layer uses this to translate a query
    /// into its snapshot lookup key exactly once per distinct query text.
    pub fn binding_key(&self, program: &Program, query: &Query) -> Result<String, CatalogError> {
        let plan = Planner::new(self.strategy)
            .with_limits(self.limits)
            .plan(program, query)?;
        Ok(format!(
            "{}@{}",
            plan.view_binding(),
            self.strategy.short_name()
        ))
    }

    /// True iff a view is cached under `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// The view cached under `key`.
    pub fn view(&self, key: &str) -> Option<&MaterializedView> {
        self.entries.get(key).map(|e| &e.view)
    }

    /// Mutable access to the view cached under `key` (for targeted
    /// insert/retract/apply).
    pub fn view_mut(&mut self, key: &str) -> Option<&mut MaterializedView> {
        self.entries.get_mut(key).map(|e| &mut e.view)
    }

    /// The current answers of the query cached under `key`.
    pub fn answers(&self, key: &str) -> Option<BTreeSet<Vec<Value>>> {
        self.entries
            .get(key)
            .map(|e| project_answers(e.view.database(), &e.answer_atom, &e.projection))
    }

    /// Apply one base-fact update to every cached view that can accept it
    /// (views deriving the fact's predicate are skipped — their copy of it
    /// is maintained, not edited).  Returns how many views changed.
    pub fn update_all(&mut self, update: &Update) -> Result<usize, CatalogError> {
        let mut changed = 0;
        for entry in self.entries.values_mut() {
            let result = match update {
                Update::Insert(fact) => entry.view.insert(fact),
                Update::Retract(fact) => entry.view.retract(fact),
            };
            match result {
                Ok(true) => changed += 1,
                Ok(false) | Err(IncrError::NotABasePredicate { .. }) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(changed)
    }

    /// Apply a whole batch of updates to every cached view, letting each
    /// view coalesce its consecutive insertions into one fixpoint re-entry
    /// (see [`MaterializedView::apply`]) — the serving layer's write path,
    /// where a maintenance writer drains its queue in batches.
    ///
    /// Updates whose predicate a view *derives* are filtered out for that
    /// view (its copy of the predicate is maintained, not edited), so a
    /// heterogeneous catalog never aborts a batch midway: every view sees
    /// exactly the subsequence of updates it can accept, in order.
    ///
    /// A view whose maintenance *fails* (a limits budget, an arity
    /// mismatch) is **evicted** rather than left behind: a cached view is
    /// a rebuildable artifact, and evicting keeps every surviving view
    /// consistent with the same update prefix — the failed binding simply
    /// re-materializes from the authoritative base facts on next sight.
    /// The alternative (aborting the batch midway) would leave some views
    /// with the batch applied and others without, permanently.
    pub fn apply_all(&mut self, updates: &[Update]) -> ApplyAllOutcome {
        let mut outcome = ApplyAllOutcome::default();
        for (key, entry) in self.entries.iter_mut() {
            let accepted: Vec<Update> = updates
                .iter()
                .filter(|u| !entry.view.program().is_derived(&u.fact().pred))
                .cloned()
                .collect();
            if accepted.is_empty() {
                continue;
            }
            match entry.view.apply(accepted) {
                Ok(report) => outcome.applied += report.applied,
                Err(e) => outcome.evicted.push((key.clone(), e.into())),
            }
        }
        for (key, _) in &outcome.evicted {
            self.entries.remove(key);
        }
        outcome
    }

    /// Aggregate maintenance metrics summed over every cached view
    /// (construction plus all updates) — the serving layer's `STATS`
    /// surface.
    pub fn aggregate_stats(&self) -> magic_engine::EvalStats {
        let mut total = magic_engine::EvalStats::default();
        for entry in self.entries.values() {
            total.merge(entry.view.stats());
        }
        total
    }

    /// Number of cached views.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no view is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached binding keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &str> + '_ {
        self.entries.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::{parse_program, parse_query, Fact};

    #[test]
    fn apply_all_evicts_failing_views_and_keeps_the_rest_consistent() {
        // View A derives from `par`; view B also matches `tag` rows at
        // arity 2.  A batch carrying a wrong-arity `tag` fact must apply
        // to A, evict B (its maintenance errors), and leave the catalog
        // able to serve A's answers for the full batch.
        let prog_a = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let prog_b = parse_program("label(X, L) :- tag(X, L).").unwrap();
        let qa = parse_query("anc(a, Y)").unwrap();
        let qb = parse_query("label(a, Y)").unwrap();
        // Separate base databases: only B's database stores `tag` (at
        // arity 2), so only B can reject the wrong-arity update below.
        let mut db_a = Database::new();
        db_a.insert_pair("par", "a", "b");
        let mut db_b = Database::new();
        db_b.insert_pair("tag", "a", "red");

        let mut catalog = ViewCatalog::new(Strategy::MagicSets);
        let ka = catalog.materialize(&prog_a, &qa, &db_a).unwrap();
        let kb = catalog.materialize(&prog_b, &qb, &db_b).unwrap();
        assert_eq!(catalog.len(), 2);

        let updates = vec![
            Update::Insert(Fact::plain("par", vec![Value::sym("a"), Value::sym("c")])),
            Update::Insert(Fact::plain("tag", vec![Value::sym("oops")])), // arity 1
        ];
        let outcome = catalog.apply_all(&updates);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(outcome.evicted[0].0, kb);
        assert_eq!(catalog.len(), 1);
        // The surviving view saw the whole batch.
        assert_eq!(catalog.answers(&ka).unwrap().len(), 2);
        // The evicted binding re-materializes on next sight.
        let (kb2, fresh) = catalog.materialize_keyed(&prog_b, &qb, &db_b).unwrap();
        assert_eq!(kb, kb2);
        assert!(fresh);
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn materialize_keyed_reports_cache_hits() {
        let program = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let query = parse_query("anc(a, Y)").unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        let mut catalog = ViewCatalog::new(Strategy::MagicSets);
        let (k1, fresh1) = catalog.materialize_keyed(&program, &query, &db).unwrap();
        let (k2, fresh2) = catalog.materialize_keyed(&program, &query, &db).unwrap();
        assert_eq!(k1, k2);
        assert!(fresh1);
        assert!(!fresh2);
    }

    #[test]
    fn changed_program_rematerializes_instead_of_serving_stale_rules() {
        let v1 = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let v2 = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let query = parse_query("anc(a, Y)").unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("par", "b", "c");

        let mut catalog = ViewCatalog::new(Strategy::MagicSets);
        let k1 = catalog.materialize(&v1, &query, &db).unwrap();
        assert_eq!(catalog.answers(&k1).unwrap().len(), 1); // only (a, b)

        // Same binding, new rules: the stale view must not be served.
        let k2 = catalog.materialize(&v2, &query, &db).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.answers(&k2).unwrap().len(), 2); // b and c

        // Same binding, same rules: cache hit keeps the live view (with
        // its streamed updates), ignoring the passed database.
        catalog
            .update_all(&Update::Insert(magic_datalog::Fact::plain(
                "par",
                vec![Value::sym("c"), Value::sym("d")],
            )))
            .unwrap();
        let k3 = catalog.materialize(&v2, &query, &Database::new()).unwrap();
        assert_eq!(k2, k3);
        assert_eq!(catalog.answers(&k3).unwrap().len(), 3);
    }
}
