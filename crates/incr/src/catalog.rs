//! A catalog of live materialized views, keyed by adorned query binding.
//!
//! The serving shape the ROADMAP's north star needs: plan a query once
//! (rewrite under a strategy), materialize the rewritten program as a
//! [`MaterializedView`], and cache it under the query's *adorned binding
//! key* — the answer predicate, its bound/free adornment, and the bound
//! constants (`anc[bf](john)`).  Repeated queries with the same binding hit
//! the cached view; base-fact updates stream into every cached view through
//! [`ViewCatalog::update_all`].
//!
//! Each cached entry carries exactly one compiled
//! [`Schedule`](magic_datalog::Schedule) (inside its view's fixpoint
//! runner): the stratified shape is computed when the plan is
//! materialized and shared by every subsequent maintenance resume —
//! never rebuilt per update.

use crate::error::IncrError;
use crate::view::{MaterializedView, Update};
use magic_core::planner::{PlanError, Planner, Strategy};
use magic_datalog::{Atom, Program, Query, Value, Variable};
use magic_engine::{answers::project_answers, EvalStats, Limits};
use magic_storage::Database;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors raised by catalog operations.
#[derive(Clone, Debug)]
pub enum CatalogError {
    /// Planning (adornment / rewriting) failed.
    Plan(PlanError),
    /// Materializing or maintaining the view failed.
    Incr(IncrError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Plan(e) => write!(f, "planning error: {e}"),
            CatalogError::Incr(e) => write!(f, "maintenance error: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<PlanError> for CatalogError {
    fn from(e: PlanError) -> Self {
        CatalogError::Plan(e)
    }
}

impl From<IncrError> for CatalogError {
    fn from(e: IncrError) -> Self {
        CatalogError::Incr(e)
    }
}

/// What a batched [`ViewCatalog::apply_all`] did.
#[derive(Clone, Debug, Default)]
pub struct ApplyAllOutcome {
    /// State-changing applications, summed over all surviving views.
    pub applied: usize,
    /// Keys of the surviving views whose state actually changed (at least
    /// one update of the batch was not a no-op for them).  The serving
    /// layer republishes exactly these — an incremental publish touches
    /// only the views a batch moved, never the whole catalog.
    pub changed: Vec<String>,
    /// Views evicted because their maintenance failed, with the error
    /// that condemned each.  The catalog stays internally consistent;
    /// evicted bindings re-materialize on next sight.
    pub evicted: Vec<(String, CatalogError)>,
}

/// One cached view plus how to read the query's answers back out of it.
#[derive(Clone, Debug)]
struct CatalogEntry {
    view: MaterializedView,
    answer_atom: Atom,
    projection: Vec<Variable>,
    /// Logical timestamp of the last materialize request for this binding
    /// — the recency signal [`ViewCatalog::with_max_views`] eviction ranks
    /// by.  Maintenance (`apply_all` / `update_all`) deliberately does not
    /// bump it: being updated is not being *used*.
    last_used: u64,
    /// Wall-clock counterpart of `last_used`, consulted by
    /// [`ViewCatalog::with_view_ttl`] expiry (same bump discipline:
    /// requests refresh it, maintenance does not).
    last_used_at: Instant,
    /// The query text the binding was materialized for — what
    /// [`ViewCatalog::export_bindings`] persists so a recovered process
    /// can re-plan and re-materialize the same view.
    query_text: String,
}

/// A frozen, self-contained reading surface over one cached view.
///
/// Produced by [`ViewCatalog::snapshot_view`].  The embedded [`Database`]
/// is a copy-on-write clone of the live view's database — pure `Arc`
/// pointer bumps, O(relations) and independent of fact count (see
/// [`magic_storage::cow_clones`]) — so taking a snapshot costs nothing and
/// the snapshot stays bit-stable while the writer keeps maintaining the
/// live view.  The serving layer publishes these per binding and replaces
/// only the entries a batch changed, instead of cloning whole catalogs.
#[derive(Clone, Debug)]
pub struct ViewSnapshot {
    db: Database,
    answer_atom: Atom,
    projection: Vec<Variable>,
    stats: EvalStats,
    recompute_reason: Option<String>,
    recomputes: u64,
}

impl ViewSnapshot {
    /// The query's answers as of this snapshot (probes the answer index
    /// the view maintains; never scans).
    pub fn answers(&self) -> BTreeSet<Vec<Value>> {
        project_answers(&self.db, &self.answer_atom, &self.projection)
    }

    /// The frozen database: base facts plus every derived fact of the
    /// fixpoint the snapshot was taken at.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Cumulative maintenance metrics of the view as of this snapshot.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// Why the view is maintained by full recompute, if it is ([`None`]
    /// for incrementally maintained views) — see
    /// [`MaterializedView::recompute_reason`].
    pub fn recompute_reason(&self) -> Option<&str> {
        self.recompute_reason.as_deref()
    }

    /// Full recomputes updates had forced as of this snapshot.
    pub fn recompute_count(&self) -> u64 {
        self.recomputes
    }
}

/// A set of live materialized views keyed by adorned query binding.
///
/// ```
/// use magic_core::planner::Strategy;
/// use magic_datalog::{parse_program, parse_query, Fact, Value};
/// use magic_incr::{Update, ViewCatalog};
/// use magic_storage::Database;
///
/// let program = parse_program(
///     "anc(X, Y) :- par(X, Y).
///      anc(X, Y) :- par(X, Z), anc(Z, Y).",
/// )
/// .unwrap();
/// let query = parse_query("anc(a, Y)").unwrap();
/// let mut db = Database::new();
/// db.insert_pair("par", "a", "b");
///
/// let mut catalog = ViewCatalog::new(Strategy::MagicSets);
/// let key = catalog.materialize(&program, &query, &db).unwrap();
/// assert_eq!(catalog.answers(&key).unwrap().len(), 1);
///
/// let edge = Fact::plain("par", vec![Value::sym("b"), Value::sym("c")]);
/// catalog.update_all(&Update::Insert(edge)).unwrap();
/// assert_eq!(catalog.answers(&key).unwrap().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ViewCatalog {
    strategy: Strategy,
    limits: Limits,
    entries: BTreeMap<String, CatalogEntry>,
    /// Capacity cap: materializing past it evicts the least-recently
    /// *requested* binding.  `None` = unbounded.
    max_views: Option<usize>,
    /// Idle-time cap: bindings not requested within this window are
    /// dropped by [`ViewCatalog::evict_expired`].  `None` = no expiry.
    view_ttl: Option<Duration>,
    /// Logical clock feeding `CatalogEntry::last_used`.
    clock: u64,
}

impl ViewCatalog {
    /// An empty catalog materializing under `strategy`.
    pub fn new(strategy: Strategy) -> ViewCatalog {
        ViewCatalog {
            strategy,
            limits: Limits::default(),
            entries: BTreeMap::new(),
            max_views: None,
            view_ttl: None,
            clock: 0,
        }
    }

    /// Override the evaluation limits applied to every view.
    pub fn with_limits(mut self, limits: Limits) -> ViewCatalog {
        self.limits = limits;
        self
    }

    /// Cap the catalog at `max_views` live views (0 means unbounded).
    ///
    /// When a fresh materialization would exceed the cap, the **coldest**
    /// cached views — least recently requested through
    /// [`ViewCatalog::materialize`] / [`ViewCatalog::materialize_keyed`] —
    /// are dropped first; the binding just materialized is never a
    /// candidate.  An evicted binding is not an error: like a
    /// maintenance-failure eviction it simply re-materializes from the
    /// authoritative base facts on next sight.  Serving deployments use
    /// this to bound the memory a long tail of one-off bindings pins.
    pub fn with_max_views(mut self, max_views: usize) -> ViewCatalog {
        self.max_views = (max_views > 0).then_some(max_views);
        self
    }

    /// Expire bindings not *requested* for `ttl` (a zero duration means
    /// no expiry).  Time-based eviction composes with the
    /// [`ViewCatalog::with_max_views`] count cap: TTL drops views that
    /// went cold regardless of catalog size, the cap bounds the size
    /// regardless of age — a serving deployment typically wants both.
    ///
    /// Expired entries are dropped inside
    /// [`ViewCatalog::materialize_keyed`] whenever it (re)builds a view,
    /// and whenever the owner calls [`ViewCatalog::evict_expired`]
    /// directly (the serving writer does so once per maintenance cycle).
    /// Like every other eviction, expiry is not an error: a dropped
    /// binding simply re-materializes from the base facts on next sight.
    pub fn with_view_ttl(mut self, ttl: Duration) -> ViewCatalog {
        self.view_ttl = (ttl > Duration::ZERO).then_some(ttl);
        self
    }

    /// The catalog's rewrite strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Plan `(program, query)` under the catalog's strategy and
    /// materialize the rewritten program over `edb` — unless a view with
    /// the same adorned binding key *and the same rewritten program* is
    /// already cached, in which case the existing (live, maintained) view
    /// is kept and `edb` is ignored: the cached view's database reflects
    /// every update streamed into it since materialization, which is the
    /// point of the cache.  A cache hit whose stored program differs
    /// (the caller changed the rules) re-materializes over `edb` instead
    /// of silently serving answers for the old rules.  Returns the key.
    pub fn materialize(
        &mut self,
        program: &Program,
        query: &Query,
        edb: &Database,
    ) -> Result<String, CatalogError> {
        self.materialize_keyed(program, query, edb)
            .map(|(key, _)| key)
    }

    /// [`ViewCatalog::materialize`], additionally reporting whether a view
    /// was (re)built: `false` means the key was a cache hit on a live view
    /// and the catalog did not change — the serving layer uses this to
    /// skip publishing a fresh (expensive, whole-catalog-clone) snapshot
    /// when two racing first-sight queries both request materialization.
    pub fn materialize_keyed(
        &mut self,
        program: &Program,
        query: &Query,
        edb: &Database,
    ) -> Result<(String, bool), CatalogError> {
        let plan = Planner::new(self.strategy)
            .with_limits(self.limits)
            .plan(program, query)?;
        let key = format!("{}@{}", plan.view_binding(), self.strategy.short_name());
        self.clock += 1;
        let now = self.clock;
        let fresh = match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = now;
                entry.last_used_at = Instant::now();
                entry.view.program() != &plan.program
            }
            None => true,
        };
        if fresh {
            let mut view = MaterializedView::with_limits(&plan.program, edb, self.limits)?;
            // Index the answer atom's bound positions once: every insert
            // and retract the view applies maintains it from here on, so
            // repeated `answers` calls probe a warm index instead of
            // scanning (and nothing ever rebuilds it).
            view.ensure_answer_index(&plan.answer_atom);
            self.entries.insert(
                key.clone(),
                CatalogEntry {
                    view,
                    answer_atom: plan.answer_atom.clone(),
                    projection: plan.projection.clone(),
                    last_used: now,
                    last_used_at: Instant::now(),
                    query_text: query.atom.to_string(),
                },
            );
            // TTL expiry first (age-based), then the count cap: the
            // entry just touched carries a fresh timestamp on both
            // scales, so it survives either pass.
            self.evict_expired();
            self.evict_cold();
        }
        Ok((key, fresh))
    }

    /// Drop every binding whose last request is older than the
    /// [`ViewCatalog::with_view_ttl`] window; returns the evicted keys.
    /// A no-op (returning nothing) when no TTL is configured.
    pub fn evict_expired(&mut self) -> Vec<String> {
        let Some(ttl) = self.view_ttl else {
            return Vec::new();
        };
        let expired: Vec<String> = self
            .entries
            .iter()
            .filter(|(_, e)| e.last_used_at.elapsed() > ttl)
            .map(|(k, _)| k.clone())
            .collect();
        for key in &expired {
            self.entries.remove(key);
        }
        expired
    }

    /// The cached bindings as `(key, query text)` pairs, in key order —
    /// what a checkpoint persists so recovery can re-plan each query and
    /// re-materialize the same views over the restored base facts.  (The
    /// views themselves are rebuildable artifacts and are deliberately
    /// *not* serialized: re-materializing through the normal planner and
    /// fixpoint keeps recovery on the already-verified code path.)
    pub fn export_bindings(&self) -> Vec<(String, String)> {
        self.entries
            .iter()
            .map(|(k, e)| (k.clone(), e.query_text.clone()))
            .collect()
    }

    /// Enforce the [`ViewCatalog::with_max_views`] cap: drop
    /// least-recently-requested entries until the catalog fits.  The entry
    /// touched last (the one a materialization just installed or re-used)
    /// always carries the freshest timestamp and therefore survives.
    fn evict_cold(&mut self) {
        let Some(cap) = self.max_views else {
            return;
        };
        while self.entries.len() > cap {
            let coldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("len > cap >= 1");
            self.entries.remove(&coldest);
        }
    }

    /// The binding key `materialize` would cache `(program, query)` under,
    /// computed by planning alone — nothing is materialized and the catalog
    /// is not consulted.  The serving layer uses this to translate a query
    /// into its snapshot lookup key exactly once per distinct query text.
    pub fn binding_key(&self, program: &Program, query: &Query) -> Result<String, CatalogError> {
        let plan = Planner::new(self.strategy)
            .with_limits(self.limits)
            .plan(program, query)?;
        Ok(format!(
            "{}@{}",
            plan.view_binding(),
            self.strategy.short_name()
        ))
    }

    /// True iff a view is cached under `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// The view cached under `key`.
    pub fn view(&self, key: &str) -> Option<&MaterializedView> {
        self.entries.get(key).map(|e| &e.view)
    }

    /// Mutable access to the view cached under `key` (for targeted
    /// insert/retract/apply).
    pub fn view_mut(&mut self, key: &str) -> Option<&mut MaterializedView> {
        self.entries.get_mut(key).map(|e| &mut e.view)
    }

    /// The current answers of the query cached under `key`.
    pub fn answers(&self, key: &str) -> Option<BTreeSet<Vec<Value>>> {
        self.entries
            .get(key)
            .map(|e| project_answers(e.view.database(), &e.answer_atom, &e.projection))
    }

    /// A frozen [`ViewSnapshot`] of the view cached under `key`.
    ///
    /// O(relations) `Arc` pointer bumps — no row, page, or index data is
    /// copied (the storage layer's copy-on-write clone; later writes to
    /// the live view re-copy only the units they touch).  The serving
    /// layer calls this once per view per *change*, never per publish.
    pub fn snapshot_view(&self, key: &str) -> Option<ViewSnapshot> {
        self.entries.get(key).map(|e| ViewSnapshot {
            db: e.view.database().clone(),
            answer_atom: e.answer_atom.clone(),
            projection: e.projection.clone(),
            stats: e.view.stats().clone(),
            recompute_reason: e.view.recompute_reason().map(str::to_string),
            recomputes: e.view.recompute_count(),
        })
    }

    /// Apply one base-fact update to every cached view that can accept it
    /// (views deriving the fact's predicate are skipped — their copy of it
    /// is maintained, not edited).  Returns how many views changed.
    pub fn update_all(&mut self, update: &Update) -> Result<usize, CatalogError> {
        let mut changed = 0;
        for entry in self.entries.values_mut() {
            let result = match update {
                Update::Insert(fact) => entry.view.insert(fact),
                Update::Retract(fact) => entry.view.retract(fact),
            };
            match result {
                Ok(true) => changed += 1,
                Ok(false) | Err(IncrError::NotABasePredicate { .. }) => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(changed)
    }

    /// Apply a whole batch of updates to every cached view, letting each
    /// view coalesce its consecutive insertions into one fixpoint re-entry
    /// (see [`MaterializedView::apply`]) — the serving layer's write path,
    /// where a maintenance writer drains its queue in batches.
    ///
    /// Updates whose predicate a view *derives* are filtered out for that
    /// view (its copy of the predicate is maintained, not edited), so a
    /// heterogeneous catalog never aborts a batch midway: every view sees
    /// exactly the subsequence of updates it can accept, in order.
    ///
    /// A view whose maintenance *fails* (a limits budget, an arity
    /// mismatch) is **evicted** rather than left behind: a cached view is
    /// a rebuildable artifact, and evicting keeps every surviving view
    /// consistent with the same update prefix — the failed binding simply
    /// re-materializes from the authoritative base facts on next sight.
    /// The alternative (aborting the batch midway) would leave some views
    /// with the batch applied and others without, permanently.
    pub fn apply_all(&mut self, updates: &[Update]) -> ApplyAllOutcome {
        let mut outcome = ApplyAllOutcome::default();
        for (key, entry) in self.entries.iter_mut() {
            let accepted: Vec<Update> = updates
                .iter()
                .filter(|u| !entry.view.program().is_derived(&u.fact().pred))
                .cloned()
                .collect();
            if accepted.is_empty() {
                continue;
            }
            match entry.view.apply(accepted) {
                Ok(report) => {
                    outcome.applied += report.applied;
                    if report.applied > 0 {
                        outcome.changed.push(key.clone());
                    }
                }
                Err(e) => outcome.evicted.push((key.clone(), e.into())),
            }
        }
        for (key, _) in &outcome.evicted {
            self.entries.remove(key);
        }
        outcome
    }

    /// Aggregate maintenance metrics summed over every cached view
    /// (construction plus all updates) — the serving layer's `STATS`
    /// surface.
    pub fn aggregate_stats(&self) -> magic_engine::EvalStats {
        let mut total = magic_engine::EvalStats::default();
        for entry in self.entries.values() {
            total.merge(entry.view.stats());
        }
        total
    }

    /// The views maintained by full recompute (guarded programs), as
    /// `(key, reason, recompute count)` — the serving layer's STATS
    /// surface for the v1 negation/aggregate fallback, so degraded
    /// maintenance is visible, never silent.
    pub fn recompute_views(&self) -> Vec<(String, String, u64)> {
        self.entries
            .iter()
            .filter_map(|(k, e)| {
                e.view
                    .recompute_reason()
                    .map(|r| (k.clone(), r.to_string(), e.view.recompute_count()))
            })
            .collect()
    }

    /// Number of cached views.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no view is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached binding keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &str> + '_ {
        self.entries.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::{parse_program, parse_query, Fact};

    #[test]
    fn apply_all_evicts_failing_views_and_keeps_the_rest_consistent() {
        // View A derives from `par`; view B also matches `tag` rows at
        // arity 2.  A batch carrying a wrong-arity `tag` fact must apply
        // to A, evict B (its maintenance errors), and leave the catalog
        // able to serve A's answers for the full batch.
        let prog_a = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let prog_b = parse_program("label(X, L) :- tag(X, L).").unwrap();
        let qa = parse_query("anc(a, Y)").unwrap();
        let qb = parse_query("label(a, Y)").unwrap();
        // Separate base databases: only B's database stores `tag` (at
        // arity 2), so only B can reject the wrong-arity update below.
        let mut db_a = Database::new();
        db_a.insert_pair("par", "a", "b");
        let mut db_b = Database::new();
        db_b.insert_pair("tag", "a", "red");

        let mut catalog = ViewCatalog::new(Strategy::MagicSets);
        let ka = catalog.materialize(&prog_a, &qa, &db_a).unwrap();
        let kb = catalog.materialize(&prog_b, &qb, &db_b).unwrap();
        assert_eq!(catalog.len(), 2);

        let updates = vec![
            Update::Insert(Fact::plain("par", vec![Value::sym("a"), Value::sym("c")])),
            Update::Insert(Fact::plain("tag", vec![Value::sym("oops")])), // arity 1
        ];
        let outcome = catalog.apply_all(&updates);
        assert_eq!(outcome.evicted.len(), 1);
        assert_eq!(outcome.evicted[0].0, kb);
        assert_eq!(catalog.len(), 1);
        // The surviving view saw the whole batch.
        assert_eq!(catalog.answers(&ka).unwrap().len(), 2);
        // The evicted binding re-materializes on next sight.
        let (kb2, fresh) = catalog.materialize_keyed(&prog_b, &qb, &db_b).unwrap();
        assert_eq!(kb, kb2);
        assert!(fresh);
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn apply_all_reports_exactly_the_views_a_batch_moved() {
        // Both views accept `par` (neither derives it), so a fresh fact
        // changes both databases; replaying the same fact is a no-op
        // everywhere and must report no changed views at all.
        let prog_a = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let prog_b = parse_program("label(X, L) :- tag(X, L).").unwrap();
        let mut db_a = Database::new();
        db_a.insert_pair("par", "a", "b");
        let mut db_b = Database::new();
        db_b.insert_pair("tag", "a", "red");
        let mut catalog = ViewCatalog::new(Strategy::MagicSets);
        let ka = catalog
            .materialize(&prog_a, &parse_query("anc(a, Y)").unwrap(), &db_a)
            .unwrap();
        let kb = catalog
            .materialize(&prog_b, &parse_query("label(a, Y)").unwrap(), &db_b)
            .unwrap();

        let fact = Fact::plain("par", vec![Value::sym("a"), Value::sym("c")]);
        let outcome = catalog.apply_all(&[Update::Insert(fact.clone())]);
        let mut expected = vec![ka, kb];
        expected.sort();
        assert_eq!(outcome.changed, expected);
        // A no-op batch (duplicate insert) changes nothing.
        let outcome = catalog.apply_all(&[Update::Insert(fact)]);
        assert!(outcome.changed.is_empty());
        assert_eq!(outcome.applied, 0);
    }

    #[test]
    fn max_views_evicts_the_least_recently_requested_binding() {
        let program = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("par", "b", "c");
        db.insert_pair("par", "c", "d");
        let mut catalog = ViewCatalog::new(Strategy::MagicSets).with_max_views(2);
        let ka = catalog
            .materialize(&program, &parse_query("anc(a, Y)").unwrap(), &db)
            .unwrap();
        let kb = catalog
            .materialize(&program, &parse_query("anc(b, Y)").unwrap(), &db)
            .unwrap();
        // Re-request `a`: it becomes the warmest entry.
        catalog
            .materialize(&program, &parse_query("anc(a, Y)").unwrap(), &db)
            .unwrap();
        // A third binding overflows the cap; `b` (coldest) must go.
        let kc = catalog
            .materialize(&program, &parse_query("anc(c, Y)").unwrap(), &db)
            .unwrap();
        assert_eq!(catalog.len(), 2);
        assert!(catalog.contains(&ka));
        assert!(!catalog.contains(&kb));
        assert!(catalog.contains(&kc));
        // The evicted binding re-materializes on next sight (and evicts in
        // turn).
        let (kb2, fresh) = catalog
            .materialize_keyed(&program, &parse_query("anc(b, Y)").unwrap(), &db)
            .unwrap();
        assert_eq!(kb, kb2);
        assert!(fresh);
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn view_ttl_expires_idle_bindings_and_composes_with_the_count_cap() {
        let program = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("par", "b", "c");
        db.insert_pair("par", "c", "d");
        let mut catalog = ViewCatalog::new(Strategy::MagicSets)
            .with_view_ttl(Duration::from_millis(30))
            .with_max_views(2);
        let ka = catalog
            .materialize(&program, &parse_query("anc(a, Y)").unwrap(), &db)
            .unwrap();
        let kb = catalog
            .materialize(&program, &parse_query("anc(b, Y)").unwrap(), &db)
            .unwrap();
        // Within the TTL nothing expires.
        assert!(catalog.evict_expired().is_empty());
        std::thread::sleep(Duration::from_millis(40));
        // Re-request `a` to keep it warm; `b` goes stale.
        catalog
            .materialize(&program, &parse_query("anc(a, Y)").unwrap(), &db)
            .unwrap();
        let expired = catalog.evict_expired();
        assert_eq!(expired, vec![kb.clone()]);
        assert!(catalog.contains(&ka));
        assert!(!catalog.contains(&kb));
        // Expiry also runs inside materialize: let `a` go cold, then
        // materialize a fresh binding — the stale one is dropped even
        // though the count cap alone would have kept both.
        std::thread::sleep(Duration::from_millis(40));
        let kc = catalog
            .materialize(&program, &parse_query("anc(c, Y)").unwrap(), &db)
            .unwrap();
        assert!(catalog.contains(&kc));
        assert!(!catalog.contains(&ka));
        assert_eq!(catalog.len(), 1);
        // An expired binding is not an error: it re-materializes.
        let (ka2, fresh) = catalog
            .materialize_keyed(&program, &parse_query("anc(a, Y)").unwrap(), &db)
            .unwrap();
        assert_eq!(ka, ka2);
        assert!(fresh);
    }

    #[test]
    fn export_bindings_reports_keys_and_query_texts() {
        let program = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        let mut catalog = ViewCatalog::new(Strategy::MagicSets);
        let ka = catalog
            .materialize(&program, &parse_query("anc(a, Y)").unwrap(), &db)
            .unwrap();
        let kb = catalog
            .materialize(&program, &parse_query("anc(X, Y)").unwrap(), &db)
            .unwrap();
        let bindings = catalog.export_bindings();
        assert_eq!(bindings.len(), 2);
        let keys: Vec<&str> = bindings.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&ka.as_str()) && keys.contains(&kb.as_str()));
        // Each exported query text re-plans to exactly its stored key —
        // the invariant recovery relies on.
        for (key, text) in &bindings {
            let query = parse_query(text).unwrap();
            assert_eq!(&catalog.binding_key(&program, &query).unwrap(), key);
        }
    }

    #[test]
    fn snapshots_stay_frozen_while_the_live_view_moves_on() {
        let program = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let query = parse_query("anc(a, Y)").unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        let mut catalog = ViewCatalog::new(Strategy::MagicSets);
        let key = catalog.materialize(&program, &query, &db).unwrap();

        let frozen = catalog.snapshot_view(&key).unwrap();
        assert_eq!(frozen.answers().len(), 1);

        catalog
            .update_all(&Update::Insert(Fact::plain(
                "par",
                vec![Value::sym("b"), Value::sym("c")],
            )))
            .unwrap();
        // The live view sees the new answer; the snapshot does not.
        assert_eq!(catalog.answers(&key).unwrap().len(), 2);
        assert_eq!(frozen.answers().len(), 1);
        assert_eq!(
            catalog.snapshot_view(&key).unwrap().stats(),
            catalog.view(&key).unwrap().stats()
        );
        assert!(catalog.snapshot_view("no-such-binding").is_none());
    }

    #[test]
    fn materialize_keyed_reports_cache_hits() {
        let program = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let query = parse_query("anc(a, Y)").unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        let mut catalog = ViewCatalog::new(Strategy::MagicSets);
        let (k1, fresh1) = catalog.materialize_keyed(&program, &query, &db).unwrap();
        let (k2, fresh2) = catalog.materialize_keyed(&program, &query, &db).unwrap();
        assert_eq!(k1, k2);
        assert!(fresh1);
        assert!(!fresh2);
    }

    #[test]
    fn changed_program_rematerializes_instead_of_serving_stale_rules() {
        let v1 = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let v2 = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let query = parse_query("anc(a, Y)").unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("par", "b", "c");

        let mut catalog = ViewCatalog::new(Strategy::MagicSets);
        let k1 = catalog.materialize(&v1, &query, &db).unwrap();
        assert_eq!(catalog.answers(&k1).unwrap().len(), 1); // only (a, b)

        // Same binding, new rules: the stale view must not be served.
        let k2 = catalog.materialize(&v2, &query, &db).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.answers(&k2).unwrap().len(), 2); // b and c

        // Same binding, same rules: cache hit keeps the live view (with
        // its streamed updates), ignoring the passed database.
        catalog
            .update_all(&Update::Insert(magic_datalog::Fact::plain(
                "par",
                vec![Value::sym("c"), Value::sym("d")],
            )))
            .unwrap();
        let k3 = catalog.materialize(&v2, &query, &Database::new()).unwrap();
        assert_eq!(k2, k3);
        assert_eq!(catalog.answers(&k3).unwrap().len(), 3);
    }
}
