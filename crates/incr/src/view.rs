//! Materialized-view sessions: construct once, then maintain under live
//! fact insertions and retractions without re-running the fixpoint.
//!
//! # Insertion
//!
//! The database at a fixpoint plus one new base fact is exactly a
//! semi-naive evaluation state whose delta is that fact, so insertion
//! *re-enters* the engine's fixpoint loop
//! ([`FixpointRunner::resume`](magic_engine::FixpointRunner::resume)) with
//! the seed as the delta window.  The runner tracks *every* body predicate
//! (not just the derived ones), joins outward from the delta through
//! delta-driven plan variants, and uses the disjoint window discipline so
//! each new derivation is enumerated exactly once — which keeps the
//! per-row derivation counts in the [`SupportTable`] exact.
//!
//! Resumption is *stratum-seeded*: the runner's compiled
//! [`Schedule`](magic_datalog::Schedule) (built once per view and shared
//! by every maintenance operation) retires, on the first resumed
//! iteration, every stratum below the lowest one the seeds can reach, so
//! a single-fact update re-enters the scheduler at its dirty stratum
//! instead of re-walking the full rule list each iteration.
//!
//! # Retraction
//!
//! Two strategies, chosen per retracted predicate at construction time:
//!
//! * **Counting** — when every derived predicate the retracted fact can
//!   reach is non-recursive, support is acyclic and exact reference
//!   counting is sound.  A worklist pass pins each deleted row at each of
//!   its body occurrences (a width-1 delta window on a delta-driven plan)
//!   and decrements the support of every lost derivation's head; rows
//!   reaching zero support are deleted and propagate.  Derivations that
//!   touch several deleted rows are discounted exactly once via the
//!   processed-row filter (see `retract_counting`).
//! * **DRed (delete and re-derive)** — for recursive cones, where cyclic
//!   support makes counting unsound (the classic `p ⇄ q` island that
//!   keeps itself alive).  An *overdeletion* shadow program computes the
//!   overapproximate deleted set, those rows are removed in one batch,
//!   rows with a surviving alternative one-step derivation (per the
//!   head-bound [`count_derivations`] join) are re-inserted as seeds, and
//!   the fixpoint is resumed to propagate re-derivations.  Support counts
//!   are recomputed exactly for everything that was touched.
//!
//! Both paths leave the database bit-for-bit equal (as a fact set) to a
//! from-scratch evaluation of the program over the updated base facts —
//! the oracle the test suite checks against, following Drabent's
//! correctness-proof framing of magic-transformation equivalence.

use crate::error::IncrError;
use magic_datalog::{analysis::DependencyGraph, Atom, Fact, PredName, Program, ValId};
use magic_engine::{
    count_derivations, evaluate_rule_visit, DeltaWindow, EvalStats, FixpointRunner, Limits,
    WindowDiscipline,
};
use magic_storage::{arena::intern_row, Database, SupportTable};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

/// A packed (interned) row, the representation maintenance works in; values
/// are decoded only at the public API edge.
type PackedRow = Vec<ValId>;

/// One element of a batched update stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert a base fact.
    Insert(Fact),
    /// Retract a base fact.
    Retract(Fact),
}

impl Update {
    /// The fact being inserted or retracted.
    pub fn fact(&self) -> &Fact {
        match self {
            Update::Insert(f) | Update::Retract(f) => f,
        }
    }
}

/// What a batched [`MaterializedView::apply`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ApplyReport {
    /// Updates that changed the database (fact was new / was present).
    pub applied: usize,
    /// Updates that were no-ops (duplicate insert, absent retract).
    pub no_ops: usize,
}

/// How retractions of a given base predicate are maintained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetractStrategy {
    /// Exact reference counting (the predicate's derived cone is acyclic).
    Counting,
    /// Delete-and-rederive (the cone contains recursion).
    DRed,
    /// Full recompute: the program uses negation or aggregates, for which
    /// neither counting nor DRed is sound in v1 (a lost fact can *add*
    /// derivations through a complement, and aggregate outputs shift
    /// without any per-derivation support notion).
    Recompute,
}

/// How the view propagates base-fact updates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaintenanceMode {
    /// Delta-driven resume for inserts, counting/DRed for retracts.
    Incremental,
    /// Every update re-runs the stratified fixpoint from the base facts
    /// and swaps the result in.  v1 policy for guarded (negation /
    /// aggregate) programs; the reason names the construct responsible.
    Recompute {
        /// Why incremental maintenance is off, e.g. "program uses negation".
        reason: String,
    },
}

/// A live materialized view: a program fixpoint maintained under
/// insertions and retractions of base facts.
///
/// ```
/// use magic_datalog::{parse_program, Fact, PredName, Value};
/// use magic_incr::MaterializedView;
/// use magic_storage::Database;
///
/// let program = parse_program(
///     "anc(X, Y) :- par(X, Y).
///      anc(X, Y) :- par(X, Z), anc(Z, Y).",
/// )
/// .unwrap();
/// let mut db = Database::new();
/// db.insert_pair("par", "a", "b");
///
/// let mut view = MaterializedView::new(&program, &db).unwrap();
/// assert_eq!(view.database().count(&PredName::plain("anc")), 1);
///
/// let edge = Fact::plain("par", vec![Value::sym("b"), Value::sym("c")]);
/// view.insert(&edge).unwrap();
/// assert_eq!(view.database().count(&PredName::plain("anc")), 3);
///
/// view.retract(&edge).unwrap();
/// assert_eq!(view.database().count(&PredName::plain("anc")), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MaterializedView {
    program: Program,
    runner: FixpointRunner,
    db: Database,
    support: SupportTable,
    /// Head predicate per plan index (avoids re-borrowing the runner in
    /// observer closures).
    head_preds: Vec<PredName>,
    base_preds: BTreeSet<PredName>,
    derived_preds: BTreeSet<PredName>,
    /// Base predicates whose entire derived cone is non-recursive: exact
    /// counting deletion is sound for them.
    counting_safe: BTreeSet<PredName>,
    /// Rows of derived predicates that were present in the initial EDB.
    /// They are axioms, not derivations: retraction never deletes them even
    /// at zero support.
    exogenous: BTreeMap<PredName, HashSet<PackedRow>>,
    /// The overdeletion shadow machine, built on first DRed retraction.
    od: Option<OdMachine>,
    limits: Limits,
    /// Cumulative maintenance metrics (construction + every update).
    stats: EvalStats,
    /// How updates propagate ([`MaintenanceMode::Recompute`] for guarded
    /// programs).
    mode: MaintenanceMode,
    /// How many full recomputes updates have forced (0 in incremental
    /// mode) — surfaced through the catalog into serving STATS so the
    /// fallback is visible, not silent.
    recomputes: u64,
}

/// The compiled overdeletion program: for each rule `h :- b1 … bk` of the
/// source program and each occurrence `i`, a rule
/// `od_h :- od_bi, b1 … bi-1, bi+1 … bk` (the shadow atom leads the body so
/// evaluation fans out from the tiny deleted set).  `od_p ⊆ p` always
/// holds: every shadow row witnesses a real derivation over the
/// pre-deletion fixpoint.
#[derive(Clone, Debug)]
struct OdMachine {
    runner: FixpointRunner,
    /// Original predicate -> shadow predicate.
    shadow: BTreeMap<PredName, PredName>,
}

/// The shadow (overdeletion) name of a predicate.  The `~` prefix cannot be
/// produced by the parser, so shadow names cannot collide with program
/// predicates.
fn shadow_pred(pred: &PredName) -> PredName {
    PredName::plain(&format!("~od~{pred}"))
}

/// Memoized shadow name of `pred`.
fn shadow_entry(map: &mut BTreeMap<PredName, PredName>, pred: &PredName) -> PredName {
    map.entry(pred.clone())
        .or_insert_with(|| shadow_pred(pred))
        .clone()
}

impl OdMachine {
    fn build(program: &Program, limits: Limits) -> OdMachine {
        let mut shadow: BTreeMap<PredName, PredName> = BTreeMap::new();
        let mut od_rules = Vec::new();
        for rule in &program.rules {
            for occ in 0..rule.body.len() {
                let od_head = rule
                    .head
                    .with_pred(shadow_entry(&mut shadow, &rule.head.pred));
                let mut body = Vec::with_capacity(rule.body.len());
                body.push(
                    rule.body[occ].with_pred(shadow_entry(&mut shadow, &rule.body[occ].pred)),
                );
                for (i, atom) in rule.body.iter().enumerate() {
                    if i != occ {
                        body.push(atom.clone());
                    }
                }
                od_rules.push(magic_datalog::Rule::new(od_head, body));
            }
        }
        let od_program = Program::from_rules(od_rules);
        let runner = FixpointRunner::for_program(&od_program).with_limits(limits);
        OdMachine { runner, shadow }
    }
}

impl MaterializedView {
    /// Materialize the fixpoint of `program` over `edb` and return the
    /// live view session.
    pub fn new(program: &Program, edb: &Database) -> Result<MaterializedView, IncrError> {
        MaterializedView::with_limits(program, edb, Limits::default())
    }

    /// Like [`MaterializedView::new`] with explicit evaluation limits
    /// (applied to construction and to every maintenance operation).
    pub fn with_limits(
        program: &Program,
        edb: &Database,
        limits: Limits,
    ) -> Result<MaterializedView, IncrError> {
        let derived_preds = program.derived_preds();
        let base_preds = program.base_preds();
        let mut tracked = derived_preds.clone();
        tracked.extend(base_preds.iter().cloned());
        let runner = FixpointRunner::compile(program, &tracked)
            .with_limits(limits)
            .with_discipline(WindowDiscipline::Disjoint);
        let head_preds: Vec<PredName> =
            runner.plans().iter().map(|p| p.head_pred.clone()).collect();

        // Derived rows already present in the EDB are axioms: record them so
        // retraction never deletes them, whatever their derivation count.
        let mut exogenous: BTreeMap<PredName, HashSet<PackedRow>> = BTreeMap::new();
        for pred in &derived_preds {
            if let Some(rel) = edb.relation(pred) {
                if !rel.is_empty() {
                    exogenous.insert(
                        pred.clone(),
                        rel.iter_ids().map(|(_, row)| row.to_vec()).collect(),
                    );
                }
            }
        }

        // A base predicate is counting-safe when no recursive derived
        // predicate can be affected by it: every lost derivation chain is
        // then acyclic and reference counts are a sound deletion criterion.
        let graph = DependencyGraph::build(program);
        let recursive: BTreeSet<PredName> = derived_preds
            .iter()
            .filter(|p| graph.is_recursive(p))
            .cloned()
            .collect();
        let mut counting_safe = BTreeSet::new();
        for base in &base_preds {
            let affected_by_recursion = recursive
                .iter()
                .any(|r| graph.reachable_from(r).contains(base));
            if !affected_by_recursion {
                counting_safe.insert(base.clone());
            }
        }

        // Guarded programs (negation / aggregates) fall back to full
        // recompute on every update: a retracted fact can *add* facts
        // through a complement, so derivation counting and DRed are both
        // unsound, and aggregate outputs carry no per-derivation support.
        let mode = if program.rules.iter().any(|r| !r.negated.is_empty()) {
            MaintenanceMode::Recompute {
                reason: "program uses negation".into(),
            }
        } else if program.rules.iter().any(|r| r.aggregate.is_some()) {
            MaintenanceMode::Recompute {
                reason: "program uses aggregates".into(),
            }
        } else {
            MaintenanceMode::Incremental
        };

        let mut db = edb.clone();
        let mut stats = EvalStats::default();
        let mut support = SupportTable::new();
        let mut op_stats = EvalStats::default();
        if mode == MaintenanceMode::Incremental {
            let mut observer = |plan_idx: usize, row: &[ValId], _is_new: bool| {
                support.add(&head_preds[plan_idx], row, 1);
            };
            runner
                .run(&mut db, &mut op_stats, Some(&mut observer))
                .map_err(IncrError::Eval)?;
        } else {
            // No support tracking: recompute mode never consults it.
            runner
                .run(&mut db, &mut op_stats, None)
                .map_err(IncrError::Eval)?;
        }
        stats.merge(&op_stats);

        Ok(MaterializedView {
            program: program.clone(),
            runner,
            db,
            support,
            head_preds,
            base_preds,
            derived_preds,
            counting_safe,
            exogenous,
            od: None,
            limits,
            stats,
            mode,
            recomputes: 0,
        })
    }

    /// The maintained database: base facts plus every derived fact of the
    /// current fixpoint.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The program whose fixpoint this view maintains.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Cumulative evaluation metrics over construction and all updates.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// The stratified schedule of the maintained program — compiled once
    /// with the view's runner and shared by construction and every
    /// insert/retract resume (see the module docs).
    pub fn schedule(&self) -> &magic_datalog::Schedule {
        self.runner.schedule()
    }

    /// The exact number of rule-body derivations currently supporting a
    /// derived fact (0 for untracked or base facts).
    pub fn support_of(&self, fact: &Fact) -> u64 {
        self.support.get(&fact.pred, &intern_row(&fact.values))
    }

    /// Ensure the view's database carries an index on the bound-constant
    /// positions of `atom`, so answer projections probe an index instead of
    /// scanning.  Built once (cheap) and thereafter maintained
    /// incrementally by every insert and (tombstone) retract the view
    /// applies — never rebuilt per query.
    ///
    /// A no-op unless the atom's relation already exists at the atom's
    /// arity (materialization creates every program relation): indexing a
    /// foreign or mistyped atom must not plant a wrong-arity relation in
    /// the maintained database.
    pub fn ensure_answer_index(&mut self, atom: &Atom) {
        let matches = self
            .db
            .relation(&atom.pred)
            .is_some_and(|rel| rel.arity() == atom.arity());
        if matches {
            magic_engine::answers::ensure_atom_index(&mut self.db, atom);
        }
    }

    /// How this view propagates updates.
    pub fn maintenance_mode(&self) -> &MaintenanceMode {
        &self.mode
    }

    /// Why incremental maintenance is off, if it is ([`None`] for
    /// incremental views) — the typed reason the serving layer surfaces.
    pub fn recompute_reason(&self) -> Option<&str> {
        match &self.mode {
            MaintenanceMode::Incremental => None,
            MaintenanceMode::Recompute { reason } => Some(reason),
        }
    }

    /// How many full recomputes updates have forced so far.
    pub fn recompute_count(&self) -> u64 {
        self.recomputes
    }

    /// How retractions of `pred` are maintained.
    pub fn retract_strategy(&self, pred: &PredName) -> RetractStrategy {
        if matches!(self.mode, MaintenanceMode::Recompute { .. }) {
            RetractStrategy::Recompute
        } else if self.counting_safe.contains(pred) {
            RetractStrategy::Counting
        } else {
            RetractStrategy::DRed
        }
    }

    /// Reject updates on predicates the program derives (view outputs are
    /// maintained, not edited) and rows that disagree with a stored
    /// relation's arity (inserting would panic in storage).
    fn check_updatable(&self, fact: &Fact) -> Result<(), IncrError> {
        if self.derived_preds.contains(&fact.pred) {
            return Err(IncrError::NotABasePredicate {
                pred: fact.pred.to_string(),
            });
        }
        if let Some(rel) = self.db.relation(&fact.pred) {
            if rel.arity() != fact.arity() {
                return Err(IncrError::ArityMismatch {
                    pred: fact.pred.to_string(),
                    fact_arity: fact.arity(),
                    stored_arity: rel.arity(),
                });
            }
        }
        Ok(())
    }

    /// Insert a base fact and propagate; returns `false` (and does
    /// nothing) if the fact was already present.
    pub fn insert(&mut self, fact: &Fact) -> Result<bool, IncrError> {
        self.check_updatable(fact)?;
        if self.db.contains(fact) {
            return Ok(false);
        }
        if matches!(self.mode, MaintenanceMode::Recompute { .. }) {
            self.db.insert(fact.pred.clone(), fact.values.clone());
            self.recompute()?;
            return Ok(true);
        }
        let marks = self.runner.marks(&self.db);
        self.db.insert(fact.pred.clone(), fact.values.clone());
        self.resume(marks)?;
        Ok(true)
    }

    /// Retract a base fact and propagate; returns `false` (and does
    /// nothing) if the fact was not present.
    pub fn retract(&mut self, fact: &Fact) -> Result<bool, IncrError> {
        self.check_updatable(fact)?;
        if !self.db.contains(fact) {
            return Ok(false);
        }
        if matches!(self.mode, MaintenanceMode::Recompute { .. }) {
            self.db.remove(&fact.pred, &fact.values);
            self.recompute()?;
            return Ok(true);
        }
        if self.counting_safe.contains(&fact.pred) || !self.base_preds.contains(&fact.pred) {
            // Predicates outside the program's body cannot affect any
            // derived fact; the counting pass handles them trivially.
            self.retract_counting(fact)?;
        } else {
            self.retract_dred(fact)?;
        }
        Ok(true)
    }

    /// Apply a batch of updates in order; consecutive insertions are
    /// coalesced into one fixpoint re-entry.
    ///
    /// On error the already-applied prefix of the batch stays applied (and
    /// propagated), the offending update onward is dropped: the view is
    /// always left at a fixpoint of its program.
    pub fn apply<I: IntoIterator<Item = Update>>(
        &mut self,
        updates: I,
    ) -> Result<ApplyReport, IncrError> {
        if matches!(self.mode, MaintenanceMode::Recompute { .. }) {
            return self.apply_recompute(updates);
        }
        let mut report = ApplyReport::default();
        // Marks taken before the first pending insertion, if any.
        let mut pending: Option<Vec<usize>> = None;
        let mut failure: Option<IncrError> = None;
        for update in updates {
            let step = self.apply_step(update, &mut report, &mut pending);
            if let Err(e) = step {
                failure = Some(e);
                break;
            }
        }
        // Flush even on the error path: pending coalesced inserts are
        // already in the database, and dropping their marks would leave
        // the view off-fixpoint (and the support table stale) forever.
        if let Some(marks) = pending.take() {
            self.resume(marks)?;
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// One update of a batch; pending inserts accumulate under `pending`.
    fn apply_step(
        &mut self,
        update: Update,
        report: &mut ApplyReport,
        pending: &mut Option<Vec<usize>>,
    ) -> Result<(), IncrError> {
        match update {
            Update::Insert(fact) => {
                self.check_updatable(&fact)?;
                if self.db.contains(&fact) {
                    report.no_ops += 1;
                    return Ok(());
                }
                if pending.is_none() {
                    *pending = Some(self.runner.marks(&self.db));
                }
                self.db.insert(fact.pred.clone(), fact.values.clone());
                report.applied += 1;
            }
            Update::Retract(fact) => {
                if let Some(marks) = pending.take() {
                    self.resume(marks)?;
                }
                if self.retract(&fact)? {
                    report.applied += 1;
                } else {
                    report.no_ops += 1;
                }
            }
        }
        Ok(())
    }

    /// The recompute-mode batch path: mutate the base facts in order, then
    /// re-run the stratified fixpoint once for the whole batch.  Same
    /// error contract as the incremental path — an offending update drops
    /// the rest of the batch, but the already-applied prefix is
    /// propagated, leaving the view at a fixpoint of its program.
    fn apply_recompute<I: IntoIterator<Item = Update>>(
        &mut self,
        updates: I,
    ) -> Result<ApplyReport, IncrError> {
        let mut report = ApplyReport::default();
        let mut dirty = false;
        let mut failure: Option<IncrError> = None;
        for update in updates {
            if let Err(e) = self.check_updatable(update.fact()) {
                failure = Some(e);
                break;
            }
            let applied = match &update {
                Update::Insert(f) => {
                    if self.db.contains(f) {
                        false
                    } else {
                        self.db.insert(f.pred.clone(), f.values.clone());
                        true
                    }
                }
                Update::Retract(f) => {
                    if self.db.contains(f) {
                        self.db.remove(&f.pred, &f.values);
                        true
                    } else {
                        false
                    }
                }
            };
            if applied {
                report.applied += 1;
                dirty = true;
            } else {
                report.no_ops += 1;
            }
        }
        if dirty {
            self.recompute()?;
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Rebuild the fixpoint from the current base facts (plus exogenous
    /// axioms) and swap it in — the whole maintenance step in
    /// [`MaintenanceMode::Recompute`].
    fn recompute(&mut self) -> Result<(), IncrError> {
        let mut db = Database::new();
        for (pred, rel) in self.db.iter() {
            if !self.derived_preds.contains(pred) {
                for row in rel.iter() {
                    db.insert(pred.clone(), row);
                }
            }
        }
        for (pred, rows) in &self.exogenous {
            for row in rows {
                db.insert(pred.clone(), magic_storage::arena::decode_row(row));
            }
        }
        let mut op_stats = EvalStats::default();
        self.runner
            .run(&mut db, &mut op_stats, None)
            .map_err(IncrError::Eval)?;
        self.stats.merge(&op_stats);
        self.db = db;
        self.recomputes += 1;
        Ok(())
    }

    /// Re-enter the fixpoint from seeded deltas, maintaining support
    /// counts for every enumerated derivation.
    fn resume(&mut self, marks: Vec<usize>) -> Result<(), IncrError> {
        let mut op_stats = EvalStats::default();
        {
            let support = &mut self.support;
            let head_preds = &self.head_preds;
            let mut observer = |plan_idx: usize, row: &[ValId], _is_new: bool| {
                support.add(&head_preds[plan_idx], row, 1);
            };
            self.runner
                .resume(&mut self.db, marks, &mut op_stats, Some(&mut observer))
                .map_err(IncrError::Eval)?;
        }
        self.stats.merge(&op_stats);
        Ok(())
    }

    /// True iff `(pred, row)` is an exogenous axiom (came in through the
    /// EDB under a derived predicate).
    fn is_exogenous(&self, pred: &PredName, row: &[ValId]) -> bool {
        self.exogenous
            .get(pred)
            .is_some_and(|rows| rows.contains(row))
    }

    /// Reclaim tombstoned storage of `pred`'s relation once the dead-slot
    /// share crosses a threshold.  Called between maintenance operations
    /// only: compaction renumbers row ids, and fresh delta marks are taken
    /// after it.
    fn maybe_compact(&mut self, pred: &PredName) {
        const MIN_TOMBSTONES: usize = 256;
        if let Some(rel) = self.db.relation_mut_opt(pred) {
            if rel.tombstones() >= MIN_TOMBSTONES && rel.tombstones() * 2 >= rel.watermark() {
                rel.compact();
            }
        }
    }

    /// Exact counting deletion (acyclic cones).
    ///
    /// Physical removal is deferred to the end so row ids stay stable; a
    /// deleted row is *pinned* at each of its body occurrences through a
    /// width-1 delta window on the delta-driven plan variant, and every
    /// enumerated derivation decrements its head row's support.  A
    /// derivation touching several deleted rows is discounted exactly once:
    /// the pin of row `d` rejects instantiations where any other deletable
    /// occurrence holds a row processed *before* `d`, or holds `d` itself
    /// at an earlier original body position (the first pin to see the
    /// derivation claims it).
    fn retract_counting(&mut self, fact: &Fact) -> Result<(), IncrError> {
        // (pred, row id) pairs already pinned; rows here reject derivations
        // at later pins.
        let mut processed: BTreeMap<PredName, HashSet<usize>> = BTreeMap::new();
        // Rows queued for pinning, plus membership set to avoid re-queuing.
        let mut queue: VecDeque<(PredName, usize)> = VecDeque::new();
        let mut marked: BTreeMap<PredName, HashSet<usize>> = BTreeMap::new();

        let seed_id = self
            .db
            .relation(&fact.pred)
            .and_then(|rel| rel.id_of(&fact.values))
            .expect("retract_counting caller checked presence");
        marked.entry(fact.pred.clone()).or_default().insert(seed_id);
        queue.push_back((fact.pred.clone(), seed_id));

        // Deferred support decrements of one pin, applied after the
        // (immutable) join visit completes.
        let mut lost: Vec<(usize, PackedRow)> = Vec::new();
        // Tracked occurrences per plan, copied once per retraction (not
        // once per worklist row) to keep the borrow checker away from the
        // support/stats mutations inside the loop.
        let occurrences_by_plan: Vec<Vec<(usize, usize)>> = (0..self.runner.plans().len())
            .map(|plan_idx| self.runner.occurrences_of(plan_idx).to_vec())
            .collect();

        while let Some((pred, id)) = queue.pop_front() {
            for (plan_idx, occurrences) in occurrences_by_plan.iter().enumerate() {
                for (nth, &(occ, tracked_idx)) in occurrences.iter().enumerate() {
                    if self.runner.tracked()[tracked_idx] != pred {
                        continue;
                    }
                    let variant = self.runner.delta_plan(plan_idx, nth);
                    let pos_of_orig = self.runner.delta_positions(plan_idx, nth);
                    let pin = DeltaWindow {
                        occurrence: 0,
                        from: id,
                        to: id + 1,
                    };
                    lost.clear();
                    let counters = {
                        let processed = &processed;
                        let mut visit = |row: &[ValId], chosen: &[usize]| {
                            // Walk the other body occurrences (in original
                            // order, through the variant's permutation);
                            // reject derivations holding an already-pinned
                            // row, or the pinned row itself at an earlier
                            // original position (that pin claims them).
                            for (o, &vpos) in pos_of_orig.iter().enumerate() {
                                if o == occ {
                                    continue;
                                }
                                let atom = &variant.atoms[vpos];
                                let row_id = chosen[vpos];
                                if processed
                                    .get(&atom.pred)
                                    .is_some_and(|ids| ids.contains(&row_id))
                                {
                                    return;
                                }
                                if atom.pred == pred && row_id == id && o < occ {
                                    return;
                                }
                            }
                            lost.push((plan_idx, row.to_vec()));
                        };
                        evaluate_rule_visit(variant, &self.db, &[pin], &self.limits, &mut visit)
                            .map_err(IncrError::Eval)?
                    };
                    self.stats.join_probes += counters.probes;
                    for (lost_plan, head_row) in lost.drain(..) {
                        let head_pred = &self.head_preds[lost_plan];
                        if self.support.get(head_pred, &head_row) == 0 {
                            // An exogenous axiom with no tracked
                            // derivations: nothing to discount.
                            debug_assert!(self.is_exogenous(head_pred, &head_row));
                            continue;
                        }
                        let remaining = self.support.sub(head_pred, &head_row, 1);
                        if remaining == 0 && !self.is_exogenous(head_pred, &head_row) {
                            let Some(row_id) = self
                                .db
                                .relation(head_pred)
                                .and_then(|rel| rel.find_id(&head_row))
                            else {
                                continue;
                            };
                            if marked.entry(head_pred.clone()).or_default().insert(row_id) {
                                queue.push_back((head_pred.clone(), row_id));
                            }
                        }
                    }
                }
            }
            processed.entry(pred.clone()).or_default().insert(id);
        }

        // Physical removal: tombstone each marked id (ids stayed valid
        // through the worklist because removal was deferred), then compact
        // the relation if dead slots piled up.
        for (pred, ids) in marked {
            let Some(rel) = self.db.relation_mut_opt(&pred) else {
                continue;
            };
            for &id in &ids {
                // Support first, while the row slice can still be borrowed
                // (the tombstoned slot would keep decoding, but this saves
                // the copy).
                self.support.remove(&pred, rel.row_ids(id));
                rel.remove_id(id);
            }
            self.maybe_compact(&pred);
        }
        Ok(())
    }

    /// Delete-and-rederive (recursive cones): overdelete through the
    /// shadow program, batch-remove, re-seed rows with surviving
    /// alternative derivations, resume the fixpoint.
    fn retract_dred(&mut self, fact: &Fact) -> Result<(), IncrError> {
        if self.od.is_none() {
            self.od = Some(OdMachine::build(&self.program, self.limits));
        }
        let od = self.od.as_ref().expect("just built");

        // 1. Overdeletion fixpoint: seed the retracted fact's shadow and
        //    run the shadow program against the pre-deletion database.
        let seed_pred = od
            .shadow
            .get(&fact.pred)
            .cloned()
            .unwrap_or_else(|| shadow_pred(&fact.pred));
        self.db.insert(seed_pred, fact.values.clone());
        let mut od_stats = EvalStats::default();
        od.runner
            .run(&mut self.db, &mut od_stats, None)
            .map_err(IncrError::Eval)?;
        self.stats.merge(&od_stats);

        // 2. Collect the overdeleted rows per derived predicate (shadow
        //    rows that are actually present and not exogenous axioms), then
        //    drop every shadow relation again.
        let mut overdeleted: Vec<(PredName, Vec<PackedRow>)> = Vec::new();
        // Exogenous axioms touched by overdeletion survive removal but may
        // have lost derivations; their support is recomputed below.
        let mut touched_axioms: Vec<(PredName, PackedRow)> = Vec::new();
        for (orig, shadow) in &od.shadow {
            if !self.derived_preds.contains(orig) {
                continue;
            }
            let Some(shadow_rel) = self.db.relation(shadow) else {
                continue;
            };
            let Some(rel) = self.db.relation(orig) else {
                continue;
            };
            let mut rows = Vec::new();
            for (_, row) in shadow_rel.iter_ids() {
                if !rel.contains_ids(row) {
                    continue;
                }
                if self.is_exogenous(orig, row) {
                    touched_axioms.push((orig.clone(), row.to_vec()));
                } else {
                    rows.push(row.to_vec());
                }
            }
            if !rows.is_empty() {
                overdeleted.push((orig.clone(), rows));
            }
        }
        let shadow_preds: Vec<PredName> = od.shadow.values().cloned().collect();
        for shadow in shadow_preds {
            self.db.remove_relation(&shadow);
        }

        // 3. Physical removal: the retracted base fact plus the overdeleted
        //    derived rows (tombstone marks; row ids stay valid).  Support
        //    entries of removed rows are discarded (re-derived rows get
        //    fresh exact counts below).  Relations with enough dead slots
        //    are compacted here, *before* the marks below are taken.
        self.db.remove(&fact.pred, &fact.values);
        self.maybe_compact(&fact.pred);
        for (pred, rows) in &overdeleted {
            for row in rows {
                self.support.remove(pred, row);
                if let Some(rel) = self.db.relation_mut_opt(pred) {
                    if let Some(id) = rel.find_id(row) {
                        rel.remove_id(id);
                    }
                }
            }
            self.maybe_compact(pred);
        }

        // 4. Re-derivation seeds: removed rows with at least one surviving
        //    one-step derivation from the remaining database.  All counts
        //    are taken against the seed-free database, then the seeds are
        //    appended after the marks so the resumed windows count exactly
        //    the derivations that involve re-inserted rows.
        let mut seeds: Vec<(PredName, PackedRow, u64)> = Vec::new();
        for (pred, rows) in &overdeleted {
            for row in rows {
                let count = self.one_step_support(pred, row)?;
                if count > 0 {
                    seeds.push((pred.clone(), row.clone(), count));
                }
            }
        }
        // Touched axioms stay in place; reset their counts to the surviving
        // derivations (the resume below adds back any involving re-derived
        // rows, same as for the seeds).
        for (pred, row) in &touched_axioms {
            let count = self.one_step_support(pred, row)?;
            self.support.remove(pred, row);
            if count > 0 {
                self.support.add(pred, row, count);
            }
        }
        let marks = self.runner.marks(&self.db);
        for (pred, row, count) in seeds {
            self.db.relation_mut(&pred, row.len()).insert_ids(&row);
            self.support.add(&pred, &row, count);
        }
        self.resume(marks)
    }
}

impl MaterializedView {
    /// Sum of `count_derivations` over the rules deriving `pred` — the
    /// current one-step support of a (packed) row, computed from the
    /// database as it stands.  Runs on the head-bound plan variants, whose
    /// access paths exploit the bindings the matched head row provides
    /// (the forward plans would scan their leading atoms instead).
    fn one_step_support(&self, pred: &PredName, row: &[ValId]) -> Result<u64, IncrError> {
        let mut count = 0u64;
        for plan_idx in 0..self.runner.plans().len() {
            if &self.head_preds[plan_idx] != pred {
                continue;
            }
            let plan = self.runner.head_bound_plan(plan_idx);
            count += count_derivations(plan, &self.db, row, &self.limits)
                .map_err(IncrError::Eval)? as u64;
        }
        Ok(count)
    }
}

impl MaterializedView {
    /// Check the support invariant: for every derived row, the recorded
    /// count equals the number of rule-body derivations recomputed from
    /// scratch by the head-bound join (plus nothing for exogenous axioms,
    /// which are allowed a zero count).  Test/debug helper — full-join
    /// cost.
    pub fn verify_support(&self) -> Result<(), String> {
        if matches!(self.mode, MaintenanceMode::Recompute { .. }) {
            // Recompute mode maintains no support table; there is nothing
            // to drift.
            return Ok(());
        }
        for pred in &self.derived_preds {
            let Some(rel) = self.db.relation(pred) else {
                continue;
            };
            for (_, row) in rel.iter_ids() {
                let expected = self
                    .one_step_support(pred, row)
                    .map_err(|e| e.to_string())?;
                let recorded = self.support.get(pred, row);
                if recorded != expected {
                    return Err(format!(
                        "support drift for {pred}{row:?}: recorded {recorded}, \
                         recomputed {expected}"
                    ));
                }
                if expected == 0 && !self.is_exogenous(pred, row) {
                    return Err(format!(
                        "unfounded row {pred}{row:?}: present with zero support"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::{parse_program, Value};
    use magic_engine::Evaluator;

    fn fact2(pred: &str, a: &str, b: &str) -> Fact {
        Fact::plain(pred, vec![Value::sym(a), Value::sym(b)])
    }

    /// The view database must equal a from-scratch evaluation over its
    /// current base facts.
    fn assert_matches_oracle(view: &MaterializedView, label: &str) {
        let mut edb = Database::new();
        for (pred, rel) in view.database().iter() {
            if !view.program().is_derived(pred) {
                for row in rel.iter() {
                    edb.insert(pred.clone(), row);
                }
            }
        }
        // Exogenous axioms are EDB rows too.
        for (pred, rows) in &view.exogenous {
            for row in rows {
                edb.insert(pred.clone(), magic_storage::arena::decode_row(row));
            }
        }
        let oracle = Evaluator::new(view.program().clone()).run(&edb).unwrap();
        let view_facts: std::collections::BTreeSet<String> =
            view.database().facts().map(|f| f.to_string()).collect();
        let oracle_facts: std::collections::BTreeSet<String> =
            oracle.database.facts().map(|f| f.to_string()).collect();
        assert_eq!(view_facts, oracle_facts, "{label}: view != oracle");
        view.verify_support()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }

    #[test]
    fn grandparent_retraction_uses_exact_counting() {
        // Non-recursive: the counting path must be selected and stay exact
        // even when one grandparent pair has several derivations.
        let program = parse_program("gp(X, Z) :- par(X, Y), par(Y, Z).").unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b1");
        db.insert_pair("par", "a", "b2");
        db.insert_pair("par", "b1", "c");
        db.insert_pair("par", "b2", "c");
        let mut view = MaterializedView::new(&program, &db).unwrap();
        assert_eq!(
            view.retract_strategy(&PredName::plain("par")),
            RetractStrategy::Counting
        );
        let gp = Fact::plain("gp", vec![Value::sym("a"), Value::sym("c")]);
        assert_eq!(view.support_of(&gp), 2);

        // Removing one path keeps gp(a, c) with one derivation left.
        view.retract(&fact2("par", "a", "b1")).unwrap();
        assert!(view.database().contains(&gp));
        assert_eq!(view.support_of(&gp), 1);
        assert_matches_oracle(&view, "after first retraction");

        // Removing the second path deletes it.
        view.retract(&fact2("par", "b2", "c")).unwrap();
        assert!(!view.database().contains(&gp));
        assert_matches_oracle(&view, "after second retraction");
    }

    #[test]
    fn triangle_rule_discounts_multi_occurrence_losses_once() {
        // e occurs three times in the body; retracting an edge that is
        // used at several occurrences of the same derivation must
        // decrement that derivation exactly once.
        let program = parse_program("tri(X) :- e(X, Y), e(Y, Z), e(Z, X).").unwrap();
        let mut db = Database::new();
        // Triangle a-b-c plus a self-loop at d (uses the same edge three
        // times in one derivation).
        db.insert_pair("e", "a", "b");
        db.insert_pair("e", "b", "c");
        db.insert_pair("e", "c", "a");
        db.insert_pair("e", "d", "d");
        let mut view = MaterializedView::new(&program, &db).unwrap();
        assert_eq!(
            view.retract_strategy(&PredName::plain("e")),
            RetractStrategy::Counting
        );
        assert_matches_oracle(&view, "initial");

        view.retract(&fact2("e", "d", "d")).unwrap();
        assert_matches_oracle(&view, "after self-loop retraction");
        assert!(!view
            .database()
            .contains(&Fact::plain("tri", vec![Value::sym("d")])));

        view.retract(&fact2("e", "b", "c")).unwrap();
        assert_matches_oracle(&view, "after triangle edge retraction");
        assert!(!view
            .database()
            .contains(&Fact::plain("tri", vec![Value::sym("a")])));
    }

    #[test]
    fn recursive_cone_selects_dred_and_rederives_alternatives() {
        let program = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("par", "b", "c");
        db.insert_pair("par", "a", "c"); // alternative path to c
        let mut view = MaterializedView::new(&program, &db).unwrap();
        assert_eq!(
            view.retract_strategy(&PredName::plain("par")),
            RetractStrategy::DRed
        );
        view.retract(&fact2("par", "b", "c")).unwrap();
        // anc(a, c) survives through the direct edge; anc(b, c) is gone.
        assert!(view.database().contains(&fact2("anc", "a", "c")));
        assert!(!view.database().contains(&fact2("anc", "b", "c")));
        assert_matches_oracle(&view, "after retraction with alternative");
    }

    #[test]
    fn cyclic_support_is_torn_down() {
        // The classic DRed test: on a cycle, every anc fact supports the
        // others; retracting the one bridge edge must not leave the island
        // alive.
        let program = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("par", "b", "c");
        db.insert_pair("par", "c", "a"); // cycle a -> b -> c -> a
        let mut view = MaterializedView::new(&program, &db).unwrap();
        assert_eq!(view.database().count(&PredName::plain("anc")), 9);

        view.retract(&fact2("par", "b", "c")).unwrap();
        assert_matches_oracle(&view, "after breaking the cycle");
        // Only a -> b and c -> a -> b remain.
        assert_eq!(view.database().count(&PredName::plain("anc")), 3);
    }

    #[test]
    fn insert_then_retract_restores_the_original_view() {
        let program = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.insert_pair("par", a, b);
        }
        let mut view = MaterializedView::new(&program, &db).unwrap();
        let before: std::collections::BTreeSet<String> =
            view.database().facts().map(|f| f.to_string()).collect();
        let edge = fact2("par", "d", "e");
        assert!(view.insert(&edge).unwrap());
        assert!(!view.insert(&edge).unwrap()); // duplicate is a no-op
        assert_eq!(view.database().count(&PredName::plain("anc")), 10);
        assert_matches_oracle(&view, "after insert");
        assert!(view.retract(&edge).unwrap());
        assert!(!view.retract(&edge).unwrap()); // absent is a no-op
        let after: std::collections::BTreeSet<String> =
            view.database().facts().map(|f| f.to_string()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn batched_apply_coalesces_inserts() {
        let program = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        let mut view = MaterializedView::new(&program, &db).unwrap();
        let report = view
            .apply(vec![
                Update::Insert(fact2("par", "b", "c")),
                Update::Insert(fact2("par", "c", "d")),
                Update::Retract(fact2("par", "a", "b")),
                Update::Insert(fact2("par", "a", "b")), // back again
                Update::Retract(fact2("par", "zz", "zz")), // absent: no-op
            ])
            .unwrap();
        assert_eq!(report.applied, 4);
        assert_eq!(report.no_ops, 1);
        assert_eq!(view.database().count(&PredName::plain("anc")), 6);
        assert_matches_oracle(&view, "after batched apply");
    }

    #[test]
    fn failed_apply_still_propagates_the_applied_prefix() {
        // A batch that errors mid-way must leave the view at a fixpoint:
        // the coalesced inserts before the failure are flushed, not
        // stranded in the database with stale support.
        let program = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        let mut view = MaterializedView::new(&program, &db).unwrap();
        let err = view
            .apply(vec![
                Update::Insert(fact2("par", "b", "c")),
                Update::Insert(fact2("anc", "x", "y")), // derived: rejected
                Update::Insert(fact2("par", "c", "d")), // dropped
            ])
            .unwrap_err();
        assert!(matches!(err, IncrError::NotABasePredicate { .. }));
        // par(b, c) was applied and must be fully propagated.
        assert!(view.database().contains(&fact2("anc", "a", "c")));
        assert!(!view.database().contains(&fact2("par", "c", "d")));
        assert_matches_oracle(&view, "after failed batch");
    }

    #[test]
    fn derived_predicates_reject_updates() {
        let program = parse_program("anc(X, Y) :- par(X, Y).").unwrap();
        let db = Database::new();
        let mut view = MaterializedView::new(&program, &db).unwrap();
        let err = view.insert(&fact2("anc", "a", "b")).unwrap_err();
        assert!(matches!(err, IncrError::NotABasePredicate { .. }));
        let err = view
            .insert(&Fact::plain("par", vec![Value::sym("a")]))
            .unwrap_err();
        assert!(matches!(err, IncrError::ArityMismatch { .. }));
    }

    #[test]
    fn exogenous_derived_rows_survive_retraction() {
        // anc(x, y) arrives through the EDB (an axiom, not derived);
        // retracting base support must not delete it.
        let program = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("anc", "x", "y"); // exogenous axiom
        let mut view = MaterializedView::new(&program, &db).unwrap();
        view.retract(&fact2("par", "a", "b")).unwrap();
        assert!(view.database().contains(&fact2("anc", "x", "y")));
        assert!(!view.database().contains(&fact2("anc", "a", "b")));
        assert_matches_oracle(&view, "after retracting all base support");
    }

    #[test]
    fn guarded_programs_fall_back_to_recompute_on_update() {
        // unreached reads the complement of reach: retracting an edge can
        // *add* unreached facts, which no support-counting scheme models.
        // The view must select recompute mode, stay oracle-exact through
        // inserts and retracts, and report the typed reason.
        let program = parse_program(
            "reach(X) :- source(X).
             reach(Y) :- reach(X), edge(X, Y).
             unreached(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert(PredName::plain("source"), vec![Value::sym("a")]);
        db.insert_pair("edge", "a", "b");
        for n in ["a", "b", "c"] {
            db.insert(PredName::plain("node"), vec![Value::sym(n)]);
        }
        let mut view = MaterializedView::new(&program, &db).unwrap();
        assert_eq!(view.recompute_reason(), Some("program uses negation"));
        assert_eq!(
            view.retract_strategy(&PredName::plain("edge")),
            RetractStrategy::Recompute
        );
        let unreached_c = Fact::plain("unreached", vec![Value::sym("c")]);
        assert!(view.database().contains(&unreached_c));

        // Insert edge(b, c): c becomes reached, unreached(c) disappears —
        // an insertion *deleting* a derived fact, the non-monotone case.
        assert!(view.insert(&fact2("edge", "b", "c")).unwrap());
        assert!(!view.database().contains(&unreached_c));
        assert_matches_oracle(&view, "after insert under negation");

        // Retract it again: unreached(c) must come back.
        assert!(view.retract(&fact2("edge", "b", "c")).unwrap());
        assert!(view.database().contains(&unreached_c));
        assert_matches_oracle(&view, "after retract under negation");
        assert_eq!(view.recompute_count(), 2);
    }

    #[test]
    fn aggregate_views_recompute_and_batched_apply_coalesces() {
        let program = parse_program("total(P, sum<C>) :- part_cost(P, C).").unwrap();
        let mut db = Database::new();
        db.insert(
            PredName::plain("part_cost"),
            vec![Value::sym("bike"), Value::int(100)],
        );
        let mut view = MaterializedView::new(&program, &db).unwrap();
        assert_eq!(view.recompute_reason(), Some("program uses aggregates"));
        let total = |n: i64| Fact::plain("total", vec![Value::sym("bike"), Value::int(n)]);
        assert!(view.database().contains(&total(100)));

        // One batch, one recompute: the old total is replaced, not kept.
        let report = view
            .apply(vec![
                Update::Insert(Fact::plain(
                    "part_cost",
                    vec![Value::sym("bike"), Value::int(30)],
                )),
                Update::Insert(Fact::plain(
                    "part_cost",
                    vec![Value::sym("bike"), Value::int(30)],
                )), // duplicate: no-op
            ])
            .unwrap();
        assert_eq!(report.applied, 1);
        assert_eq!(report.no_ops, 1);
        assert!(view.database().contains(&total(130)));
        assert!(!view.database().contains(&total(100)));
        assert_eq!(view.recompute_count(), 1);
    }

    #[test]
    fn mixed_cone_routes_by_predicate() {
        // par feeds the recursive anc; tag only feeds the non-recursive
        // label: the two base predicates get different strategies.
        let program = parse_program(
            "anc(X, Y) :- par(X, Y).
             anc(X, Y) :- par(X, Z), anc(Z, Y).
             label(X, L) :- tag(X, L).",
        )
        .unwrap();
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("tag", "a", "red");
        let mut view = MaterializedView::new(&program, &db).unwrap();
        assert_eq!(
            view.retract_strategy(&PredName::plain("par")),
            RetractStrategy::DRed
        );
        assert_eq!(
            view.retract_strategy(&PredName::plain("tag")),
            RetractStrategy::Counting
        );
        view.retract(&fact2("tag", "a", "red")).unwrap();
        assert!(!view.database().contains(&fact2("label", "a", "red")));
        assert_matches_oracle(&view, "after counting retraction");
    }
}
