//! Errors of the incremental-maintenance layer.

use magic_engine::EvalError;
use std::fmt;

/// Errors raised while constructing or maintaining a materialized view.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IncrError {
    /// The underlying fixpoint evaluation failed (limits, range
    /// restriction, arity conflicts, ...).
    Eval(EvalError),
    /// The fact's predicate is derived by the view's program: view outputs
    /// are maintained, not edited.
    NotABasePredicate {
        /// The offending predicate.
        pred: String,
    },
    /// The fact's arity disagrees with the stored relation.
    ArityMismatch {
        /// The offending predicate.
        pred: String,
        /// Arity of the offered fact.
        fact_arity: usize,
        /// Arity of the stored relation.
        stored_arity: usize,
    },
}

impl fmt::Display for IncrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncrError::Eval(e) => write!(f, "evaluation error: {e}"),
            IncrError::NotABasePredicate { pred } => write!(
                f,
                "{pred} is derived by the view's program; only base facts can be \
                 inserted or retracted"
            ),
            IncrError::ArityMismatch {
                pred,
                fact_arity,
                stored_arity,
            } => write!(
                f,
                "fact for {pred} has arity {fact_arity} but the stored relation \
                 has arity {stored_arity}"
            ),
        }
    }
}

impl std::error::Error for IncrError {}

impl From<EvalError> for IncrError {
    fn from(e: EvalError) -> Self {
        IncrError::Eval(e)
    }
}
