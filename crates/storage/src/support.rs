//! Per-row derivation-support counts for incremental view maintenance.
//!
//! A [`SupportTable`] records, for each derived row of a materialized view,
//! how many distinct rule-body instantiations currently derive it.  The
//! incremental layer (`magic-incr`) keeps the counts *exact* by enumerating
//! every derivation exactly once (the disjoint semi-naive window
//! discipline); retraction then becomes reference-count maintenance: a row
//! whose support reaches zero has no remaining derivation and is deleted,
//! and its deletion propagates.  For predicates whose support can be cyclic
//! (recursive cones) the counts alone are not a sound deletion criterion —
//! that is the delete-and-rederive (DRed) fallback's job — but they stay
//! exact either way, which the test suite checks against the head-bound
//! join oracle.
//!
//! Rows are keyed in their packed ([`ValId`]) form, matching the relation
//! storage: maintaining a count hashes a few `u32`s, never a `Value`.
//!
//! The table is storage-layer state rather than engine state because it is
//! part of what a materialized relation *is* under maintenance: rows plus
//! their support.

use crate::fxhash::FxHashMap;
use magic_datalog::{PredName, ValId};
use std::collections::BTreeMap;

/// Exact per-row derivation counts, keyed by predicate then packed row.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SupportTable {
    counts: BTreeMap<PredName, FxHashMap<Box<[ValId]>, u64>>,
}

impl SupportTable {
    /// An empty table.
    pub fn new() -> SupportTable {
        SupportTable::default()
    }

    /// Add `n` derivations of `row` under `pred`; returns the new count.
    ///
    /// The row is copied only when it is first seen under the predicate.
    pub fn add(&mut self, pred: &PredName, row: &[ValId], n: u64) -> u64 {
        let by_row = match self.counts.get_mut(pred) {
            Some(by_row) => by_row,
            None => self.counts.entry(pred.clone()).or_default(),
        };
        match by_row.get_mut(row) {
            Some(count) => {
                *count += n;
                *count
            }
            None => {
                by_row.insert(row.into(), n);
                n
            }
        }
    }

    /// Subtract `n` derivations of `row` under `pred`; returns the
    /// remaining count.  A count that reaches zero drops its entry.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the row's recorded support is smaller
    /// than `n` — the incremental algebra never over-subtracts; doing so
    /// means counts and derivations have drifted apart.
    pub fn sub(&mut self, pred: &PredName, row: &[ValId], n: u64) -> u64 {
        let Some(by_row) = self.counts.get_mut(pred) else {
            debug_assert!(n == 0, "subtracting support from an untracked predicate");
            return 0;
        };
        let Some(count) = by_row.get_mut(row) else {
            debug_assert!(n == 0, "subtracting support from an untracked row");
            return 0;
        };
        debug_assert!(*count >= n, "support underflow: {count} - {n}");
        *count = count.saturating_sub(n);
        if *count == 0 {
            by_row.remove(row);
            0
        } else {
            *count
        }
    }

    /// The recorded support of `row` under `pred` (zero if untracked).
    pub fn get(&self, pred: &PredName, row: &[ValId]) -> u64 {
        self.counts
            .get(pred)
            .and_then(|by_row| by_row.get(row))
            .copied()
            .unwrap_or(0)
    }

    /// Drop the entry of `row` under `pred` regardless of its count;
    /// returns the count it had.
    pub fn remove(&mut self, pred: &PredName, row: &[ValId]) -> u64 {
        self.counts
            .get_mut(pred)
            .and_then(|by_row| by_row.remove(row))
            .unwrap_or(0)
    }

    /// Iterate over the tracked (packed) rows of `pred` with their counts.
    pub fn rows_of(&self, pred: &PredName) -> impl Iterator<Item = (&[ValId], u64)> + '_ {
        self.counts
            .get(pred)
            .into_iter()
            .flat_map(|by_row| by_row.iter().map(|(row, &n)| (row.as_ref(), n)))
    }

    /// The predicates with at least one tracked row.
    pub fn preds(&self) -> impl Iterator<Item = &PredName> + '_ {
        self.counts
            .iter()
            .filter(|(_, by_row)| !by_row.is_empty())
            .map(|(pred, _)| pred)
    }

    /// Total number of tracked rows across all predicates.
    pub fn tracked_rows(&self) -> usize {
        self.counts.values().map(FxHashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::Value;

    fn row(s: &str) -> Vec<ValId> {
        vec![ValId::intern(&Value::sym(s))]
    }

    #[test]
    fn add_sub_roundtrip() {
        let mut t = SupportTable::new();
        let p = PredName::plain("p");
        assert_eq!(t.add(&p, &row("a"), 2), 2);
        assert_eq!(t.add(&p, &row("a"), 3), 5);
        assert_eq!(t.get(&p, &row("a")), 5);
        assert_eq!(t.sub(&p, &row("a"), 4), 1);
        assert_eq!(t.sub(&p, &row("a"), 1), 0);
        // Entry dropped at zero.
        assert_eq!(t.get(&p, &row("a")), 0);
        assert_eq!(t.tracked_rows(), 0);
    }

    #[test]
    fn per_predicate_isolation() {
        let mut t = SupportTable::new();
        let p = PredName::plain("p");
        let q = PredName::plain("q");
        t.add(&p, &row("a"), 1);
        t.add(&q, &row("a"), 7);
        assert_eq!(t.get(&p, &row("a")), 1);
        assert_eq!(t.get(&q, &row("a")), 7);
        assert_eq!(t.remove(&q, &row("a")), 7);
        assert_eq!(t.get(&q, &row("a")), 0);
        let preds: Vec<_> = t.preds().collect();
        assert_eq!(preds, vec![&p]);
    }

    #[test]
    fn rows_of_lists_tracked_rows() {
        let mut t = SupportTable::new();
        let p = PredName::plain("p");
        t.add(&p, &row("a"), 1);
        t.add(&p, &row("b"), 2);
        let mut rows: Vec<(String, u64)> = t
            .rows_of(&p)
            .map(|(r, n)| (r[0].value().to_string(), n))
            .collect();
        rows.sort();
        assert_eq!(rows, vec![("a".into(), 1), ("b".into(), 2)]);
    }
}
