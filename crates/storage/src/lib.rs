//! # magic-storage
//!
//! Fact storage for the deductive database substrate: relations of ground
//! tuples with hash indexes on bound-position patterns, and databases keyed
//! by (structured) predicate names.
//!
//! ## Storage layout: interned packed rows
//!
//! Every ground [`Value`](magic_datalog::Value) is interned once in the
//! process-wide **value arena** (re-exported here as [`ValId`]; it lives in
//! `magic_datalog::arena` so the slot-compiled term evaluator can match at
//! id level too).  A `ValId` is a `Copy` `u32` with a 2-bit tag: small
//! integers (±2^29) and symbols are encoded **inline** in the payload and
//! never touch a table; out-of-range integers and compound terms are
//! hash-consed into an append-only node table with lock-free reads, so
//! structural equality of any two ground values is a single integer
//! compare, all the way down.
//!
//! A [`Relation`] stores its rows append-only in **chunked pages** of 4096
//! row slots: row `id` lives in page `id / 4096` at page-local offset
//! `(id % 4096) × arity`, together with the page's liveness bits.
//! Duplicate elimination hashes the packed id slice (FxHash over `u32`s)
//! into a row-hash → row-id table split into 16 shards by hash; secondary
//! indexes map packed keys to ascending lists of row ids, likewise
//! sharded.  Index keys of **≤ 2 positions are packed inline into one
//! `u64`** (two inline-tagged `ValId` raw words) — no per-key boxing and
//! no node-table indirection on the dominant binary-relation workloads.
//! Nothing on the insert or probe path hashes or clones a `Value`; rows
//! are decoded back to `Vec<Value>` only at the API edge
//! ([`Relation::iter`], [`Relation::row_values`], query answers).
//!
//! ## Tombstone lifecycle
//!
//! Removal never rebuilds the store.  [`Relation::remove_id`] (and the
//! value-level wrappers [`Relation::remove`] / [`Relation::remove_rows`])
//! mark the row's slot **dead** in a liveness bitset and eagerly drop its
//! id from the dedup table and from every index, so lookups, scans and
//! iteration never observe dead rows — at O(indexes) per removed row.  The
//! dead slot itself stays in the arena, which keeps **row ids stable**:
//! the semi-naive delta machinery marks relation extents with the monotone
//! [`Relation::watermark`] (high-water row id) rather than the live count,
//! so ids and delta marks taken before a removal stay valid after it.
//! [`Relation::compact`] reclaims the dead slots (renumbering rows and
//! rebuilding dedup + indexes); callers — the incremental view layer —
//! invoke it between maintenance operations once
//! [`Relation::tombstones`] crosses a threshold, and take fresh marks
//! afterwards.
//!
//! ## Share-safe reads and copy-on-write snapshots
//!
//! Two properties make this storage layer safe to share across threads
//! without locks on any probe path:
//!
//! * [`Database::view`] → [`DatabaseView`] and [`Relation::snapshot`] →
//!   [`RelationSnapshot`] expose a borrow-based read surface (no interior
//!   mutability, no coordination).  The join resolves relations through
//!   it, which is what lets the parallel scheduler's workers — and any
//!   reader holding a frozen database — probe concurrently.
//! * Every storage unit — row pages, dedup shards, index shards — sits
//!   behind an `Arc`, so `Database::clone` / `Relation::clone` are pure
//!   pointer bumps: a clone is a self-contained **copy-on-write
//!   snapshot**, and every interned `ValId` stays valid process-wide.
//!   Writes after a clone re-copy exactly the units they touch
//!   ([`cow_clones`] counts them), so publishing a snapshot costs nothing
//!   and the writer pays O(touched units) per publish cycle, never O(data).
//!   The serving layer (`magic-serve`) leans on exactly this: its writer
//!   publishes cheap clones behind an `Arc` after every batch, and its
//!   readers answer from the frozen copies while maintenance continues.
//!
//! ```
//! use magic_storage::Database;
//! use magic_datalog::{Fact, PredName, Value};
//!
//! let mut db = Database::new();
//! db.insert_pair("par", "john", "mary");
//! db.insert_pair("par", "mary", "ann");
//! assert_eq!(db.count(&PredName::plain("par")), 2);
//! assert!(db.contains(&Fact::plain(
//!     "par",
//!     vec![Value::sym("john"), Value::sym("mary")]
//! )));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod database;
pub mod fxhash;
pub mod relation;
pub mod support;

/// The value arena (defined in `magic_datalog::arena`, re-exported here as
/// the storage-facing interning API).
pub use magic_datalog::arena;
pub use magic_datalog::ValId;

pub use database::{Database, DatabaseView};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use relation::{cow_clones, Relation, RelationSnapshot, Row};
pub use support::SupportTable;
