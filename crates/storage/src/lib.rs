//! # magic-storage
//!
//! Fact storage for the deductive database substrate: relations of ground
//! tuples with hash indexes on bound-position patterns, and databases keyed
//! by (structured) predicate names.
//!
//! ```
//! use magic_storage::Database;
//! use magic_datalog::{Fact, PredName, Value};
//!
//! let mut db = Database::new();
//! db.insert_pair("par", "john", "mary");
//! db.insert_pair("par", "mary", "ann");
//! assert_eq!(db.count(&PredName::plain("par")), 2);
//! assert!(db.contains(&Fact::plain(
//!     "par",
//!     vec![Value::sym("john"), Value::sym("mary")]
//! )));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod database;
pub mod fxhash;
pub mod relation;
pub mod support;

pub use database::Database;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use relation::{Relation, Row};
pub use support::SupportTable;
