//! In-memory relations with hash indexes on bound-position patterns.

use crate::fxhash::{FxBuildHasher, FxHashMap};
use magic_datalog::Value;
use std::collections::HashSet;
use std::hash::{BuildHasher, Hash};

/// A row (tuple) of ground values.
pub type Row = Vec<Value>;

/// The row ids sharing one row hash in the dedup table.
///
/// Hash collisions between distinct rows are ~nonexistent at 64 bits, so
/// the common case is a single id stored inline with no heap allocation;
/// the `Many` spill keeps correctness when a collision does happen.
#[derive(Clone, Debug)]
enum HashBucket {
    One(u32),
    Many(Vec<u32>),
}

impl HashBucket {
    fn ids(&self) -> &[u32] {
        match self {
            HashBucket::One(id) => std::slice::from_ref(id),
            HashBucket::Many(ids) => ids,
        }
    }

    fn push(&mut self, id: u32) {
        match self {
            HashBucket::One(first) => *self = HashBucket::Many(vec![*first, id]),
            HashBucket::Many(ids) => ids.push(id),
        }
    }
}

/// An in-memory relation: a set of rows of fixed arity, with hash indexes
/// built on demand for the bound-position patterns the evaluator needs.
///
/// Rows are stored **once**, append-only in insertion order (so row ids are
/// stable and iteration is deterministic).  Duplicate elimination goes
/// through a row-hash → row-id table instead of a second `HashSet<Row>`
/// copy of every row.  Indexes map a key — the values at a fixed list of
/// positions — to the ids of the rows having that key, kept in ascending id
/// order (they are appended in insertion order), which is what lets the
/// evaluator slice delta windows out of them by binary search.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Row>,
    /// row hash -> ids of rows with that hash (dedup without a row copy).
    dedup: FxHashMap<u64, HashBucket>,
    /// positions -> key values -> ascending row ids.
    indexes: FxHashMap<Vec<usize>, FxHashMap<Row, Vec<usize>>>,
    /// Reusable key buffer for incremental index maintenance.
    key_scratch: Row,
}

fn hash_row(row: &[Value]) -> u64 {
    let mut state = FxBuildHasher::default().build_hasher();
    // Hash as a slice so lookups with borrowed `&[Value]` agree with keys
    // inserted as owned `Vec<Value>` (std's `Borrow` contract).
    row.hash(&mut state);
    std::hash::Hasher::finish(&state)
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            ..Relation::default()
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity does not match the relation's.
    pub fn insert(&mut self, row: Row) -> bool {
        assert_eq!(
            row.len(),
            self.arity,
            "row arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        let hash = hash_row(&row);
        let id = self.rows.len();
        let id32 = u32::try_from(id).expect("relation exceeds u32::MAX rows");
        // One dedup-map probe per insert: duplicate check and id recording
        // go through the same entry.
        match self.dedup.entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut entry) => {
                let rows = &self.rows;
                if entry.get().ids().iter().any(|&id| rows[id as usize] == row) {
                    return false;
                }
                entry.get_mut().push(id32);
            }
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(HashBucket::One(id32));
            }
        }
        // Maintain every index without allocating a fresh key per index:
        // the scratch buffer is reused, and an owned key is cloned only the
        // first time a key value is seen.
        let mut scratch = std::mem::take(&mut self.key_scratch);
        for (positions, index) in self.indexes.iter_mut() {
            scratch.clear();
            scratch.extend(positions.iter().map(|&p| row[p].clone()));
            if let Some(ids) = index.get_mut(scratch.as_slice()) {
                ids.push(id);
            } else {
                index.insert(scratch.clone(), vec![id]);
            }
        }
        self.key_scratch = scratch;
        self.rows.push(row);
        true
    }

    /// True iff the relation contains `row`.
    pub fn contains(&self, row: &[Value]) -> bool {
        self.dedup
            .get(&hash_row(row))
            .is_some_and(|bucket| bucket.ids().iter().any(|&id| self.rows[id as usize] == row))
    }

    /// Iterate over all rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> + '_ {
        self.rows.iter()
    }

    /// The row with the given id (insertion order).
    pub fn row(&self, id: usize) -> &Row {
        &self.rows[id]
    }

    /// Rows with ids in `from..` (used by delta-based evaluation).
    pub fn rows_from(&self, from: usize) -> &[Row] {
        &self.rows[from.min(self.rows.len())..]
    }

    /// Ensure an index exists on `positions` and return the matching row ids
    /// for `key` as an owned vector.  Convenience wrapper over
    /// [`Relation::ensure_index`] + [`Relation::lookup`]; the evaluator's
    /// hot path uses those directly to borrow the id slice instead.
    ///
    /// An empty `positions` list means "no selection": all row ids match.
    pub fn select_ids(&mut self, positions: &[usize], key: &[Value]) -> Vec<usize> {
        debug_assert_eq!(positions.len(), key.len());
        if positions.is_empty() {
            return (0..self.rows.len()).collect();
        }
        self.ensure_index(positions);
        self.lookup(positions, key)
            .expect("index was just ensured")
            .to_vec()
    }

    /// Ensure an (incrementally maintained) hash index exists on `positions`.
    pub fn ensure_index(&mut self, positions: &[usize]) {
        if positions.is_empty() || self.indexes.contains_key(positions) {
            return;
        }
        let mut index: FxHashMap<Row, Vec<usize>> = FxHashMap::default();
        for (id, row) in self.rows.iter().enumerate() {
            let key: Row = positions.iter().map(|&p| row[p].clone()).collect();
            index.entry(key).or_default().push(id);
        }
        self.indexes.insert(positions.to_vec(), index);
    }

    /// Look up the row ids matching `key` on a previously ensured index.
    ///
    /// This is the join's single hot-path entry point: the returned slice is
    /// borrowed (never copied) and its ids are in **ascending order** —
    /// semi-naive delta windows are binary-searched out of it.  Returns
    /// `None` if no index exists on `positions` (callers fall back to
    /// [`Relation::scan_select`]).
    pub fn lookup(&self, positions: &[usize], key: &[Value]) -> Option<&[usize]> {
        let index = self.indexes.get(positions)?;
        Some(index.get(key).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Like [`Relation::select_ids`] but without building or using indexes
    /// (linear scan, ids ascending).  Useful for read-only access paths.
    pub fn scan_select(&self, positions: &[usize], key: &[Value]) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| positions.iter().zip(key).all(|(&p, v)| &row[p] == v))
            .map(|(id, _)| id)
            .collect()
    }

    /// Project the relation onto the given positions, returning the distinct
    /// projected rows in first-appearance order.
    pub fn project(&self, positions: &[usize]) -> Vec<Row> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            let projected: Row = positions.iter().map(|&p| row[p].clone()).collect();
            if seen.insert(projected.clone()) {
                out.push(projected);
            }
        }
        out
    }

    /// The stored id of `row`, if present.
    pub fn id_of(&self, row: &[Value]) -> Option<usize> {
        self.dedup.get(&hash_row(row)).and_then(|bucket| {
            bucket
                .ids()
                .iter()
                .map(|&id| id as usize)
                .find(|&id| self.rows[id] == row)
        })
    }

    /// Remove one row; returns `true` if it was present.
    ///
    /// Removal is rebuild-based (see [`Relation::remove_rows`]); callers
    /// with several rows to drop should batch them into one call.
    pub fn remove(&mut self, row: &[Value]) -> bool {
        match self.id_of(row) {
            Some(id) => {
                self.rebuild_without(&std::iter::once(id).collect());
                true
            }
            None => false,
        }
    }

    /// Remove every row of `rows` that is present; returns how many were.
    ///
    /// Removal compacts the row store, so **row ids shift**: any ids or
    /// delta marks taken before a removal are invalidated.  The dedup
    /// table is rebuilt and every existing index is rebuilt on its same
    /// position pattern (so previously ensured access paths stay warm).
    /// One call costs `O(stored rows + removed)` regardless of how many
    /// rows are removed — batch removals accordingly.
    pub fn remove_rows(&mut self, rows: &[Row]) -> usize {
        let dead: HashSet<usize> = rows.iter().filter_map(|row| self.id_of(row)).collect();
        if dead.is_empty() {
            return 0;
        }
        self.rebuild_without(&dead);
        dead.len()
    }

    /// Drop the rows with the given ids and rebuild dedup + indexes.
    fn rebuild_without(&mut self, dead: &HashSet<usize>) {
        let old = std::mem::take(&mut self.rows);
        self.rows = old
            .into_iter()
            .enumerate()
            .filter(|(id, _)| !dead.contains(id))
            .map(|(_, row)| row)
            .collect();
        self.dedup.clear();
        for (id, row) in self.rows.iter().enumerate() {
            let id32 = u32::try_from(id).expect("relation exceeds u32::MAX rows");
            match self.dedup.entry(hash_row(row)) {
                std::collections::hash_map::Entry::Occupied(mut entry) => {
                    entry.get_mut().push(id32)
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(HashBucket::One(id32));
                }
            }
        }
        let patterns: Vec<Vec<usize>> = self.indexes.keys().cloned().collect();
        self.indexes.clear();
        for positions in patterns {
            self.ensure_index(&positions);
        }
    }

    /// Merge all rows of `other` into `self`; returns the number of new rows.
    pub fn merge(&mut self, other: &Relation) -> usize {
        let mut added = 0;
        for row in other.iter() {
            if self.insert(row.clone()) {
                added += 1;
            }
        }
        added
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        // Set equality: both sides are duplicate-free, so equal lengths plus
        // one-way containment suffice.
        self.arity == other.arity
            && self.rows.len() == other.rows.len()
            && self.rows.iter().all(|row| other.contains(row))
    }
}

impl Eq for Relation {}

impl FromIterator<Row> for Relation {
    fn from_iter<T: IntoIterator<Item = Row>>(iter: T) -> Self {
        let rows: Vec<Row> = iter.into_iter().collect();
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut rel = Relation::new(arity);
        for r in rows {
            rel.insert(r);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    #[test]
    fn insert_and_dedup() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![v("a"), v("b")]));
        assert!(!r.insert(vec![v("a"), v("b")]));
        assert!(r.insert(vec![v("a"), v("c")]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[v("a"), v("b")]));
        assert!(!r.contains(&[v("b"), v("a")]));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(vec![v("a")]);
    }

    #[test]
    fn select_builds_index_and_stays_current() {
        let mut r = Relation::new(2);
        r.insert(vec![v("a"), v("b")]);
        r.insert(vec![v("a"), v("c")]);
        r.insert(vec![v("d"), v("e")]);
        let ids = r.select_ids(&[0], &[v("a")]);
        assert_eq!(ids.len(), 2);
        // Index must be maintained across later inserts.
        r.insert(vec![v("a"), v("f")]);
        let ids = r.select_ids(&[0], &[v("a")]);
        assert_eq!(ids.len(), 3);
        // Multi-position keys.
        let ids = r.select_ids(&[0, 1], &[v("a"), v("c")]);
        assert_eq!(ids.len(), 1);
        assert_eq!(r.row(ids[0]), &vec![v("a"), v("c")]);
        // Missing keys return nothing.
        assert!(r.select_ids(&[0], &[v("zzz")]).is_empty());
        // Empty position list selects everything.
        assert_eq!(r.select_ids(&[], &[]).len(), 4);
    }

    #[test]
    fn index_ids_stay_ascending_across_inserts() {
        // The delta-window binary search relies on this invariant.
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        for i in 0..40i64 {
            r.insert(vec![Value::Int(i % 4), Value::Int(i)]);
        }
        for k in 0..4i64 {
            let ids = r.lookup(&[0], &[Value::Int(k)]).unwrap();
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids not ascending");
            assert_eq!(ids.len(), 10);
        }
    }

    #[test]
    fn scan_select_agrees_with_index() {
        let mut r = Relation::new(3);
        for i in 0..10i64 {
            r.insert(vec![Value::Int(i % 3), Value::Int(i), Value::Int(i * 2)]);
        }
        let scanned = r.scan_select(&[0], &[Value::Int(1)]);
        let indexed = r.select_ids(&[0], &[Value::Int(1)]);
        assert_eq!(scanned, indexed);
    }

    #[test]
    fn project_dedups() {
        let mut r = Relation::new(2);
        r.insert(vec![v("a"), v("b")]);
        r.insert(vec![v("a"), v("c")]);
        r.insert(vec![v("d"), v("b")]);
        let proj = r.project(&[0]);
        assert_eq!(proj, vec![vec![v("a")], vec![v("d")]]);
        let proj = r.project(&[1, 0]);
        assert_eq!(proj.len(), 3);
    }

    #[test]
    fn merge_counts_new_rows() {
        let mut a = Relation::new(1);
        a.insert(vec![v("x")]);
        let mut b = Relation::new(1);
        b.insert(vec![v("x")]);
        b.insert(vec![v("y")]);
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn rows_from_slices_deltas() {
        let mut r = Relation::new(1);
        r.insert(vec![v("a")]);
        r.insert(vec![v("b")]);
        r.insert(vec![v("c")]);
        assert_eq!(r.rows_from(1).len(), 2);
        assert_eq!(r.rows_from(5).len(), 0);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Relation::new(1);
        a.insert(vec![v("x")]);
        a.insert(vec![v("y")]);
        let mut b = Relation::new(1);
        b.insert(vec![v("y")]);
        b.insert(vec![v("x")]);
        assert_eq!(a, b);
        b.insert(vec![v("z")]);
        assert_ne!(a, b);
    }

    #[test]
    fn remove_keeps_dedup_and_indexes_consistent() {
        let mut r = Relation::new(2);
        r.insert(vec![v("a"), v("b")]);
        r.insert(vec![v("a"), v("c")]);
        r.insert(vec![v("d"), v("e")]);
        r.ensure_index(&[0]);
        assert!(r.remove(&[v("a"), v("b")]));
        assert!(!r.remove(&[v("a"), v("b")]));
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&[v("a"), v("b")]));
        // Index answers reflect the removal and later inserts still work.
        assert_eq!(r.lookup(&[0], &[v("a")]).unwrap().len(), 1);
        assert!(r.insert(vec![v("a"), v("b")]));
        assert_eq!(r.lookup(&[0], &[v("a")]).unwrap().len(), 2);
        assert!(r
            .lookup(&[0], &[v("a")])
            .unwrap()
            .windows(2)
            .all(|w| w[0] < w[1]));
    }

    #[test]
    fn remove_rows_batches_and_reports_presence() {
        let mut r = Relation::new(1);
        for s in ["a", "b", "c", "d"] {
            r.insert(vec![v(s)]);
        }
        let removed = r.remove_rows(&[vec![v("b")], vec![v("zzz")], vec![v("d")]]);
        assert_eq!(removed, 2);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[v("a")]));
        assert!(r.contains(&[v("c")]));
        // Ids compact in order.
        assert_eq!(r.id_of(&[v("a")]), Some(0));
        assert_eq!(r.id_of(&[v("c")]), Some(1));
        assert_eq!(r.id_of(&[v("b")]), None);
    }

    #[test]
    fn hash_bucket_collision_spill() {
        let mut bucket = HashBucket::One(3);
        assert_eq!(bucket.ids(), &[3]);
        bucket.push(9);
        assert_eq!(bucket.ids(), &[3, 9]);
        bucket.push(12);
        assert_eq!(bucket.ids(), &[3, 9, 12]);
    }

    #[test]
    fn dedup_survives_many_inserts() {
        // Exercise the dedup table with enough rows that any hashing bug
        // (e.g. slice/Vec disagreement) would show as phantom duplicates.
        let mut r = Relation::new(2);
        for i in 0..1000i64 {
            assert!(r.insert(vec![Value::Int(i / 25), Value::Int(i % 25)]));
        }
        for i in 0..1000i64 {
            assert!(!r.insert(vec![Value::Int(i / 25), Value::Int(i % 25)]));
            assert!(r.contains(&[Value::Int(i / 25), Value::Int(i % 25)]));
        }
        assert_eq!(r.len(), 1000);
    }
}
