//! In-memory relations over interned packed rows, with hash indexes on
//! bound-position patterns, tombstone-based removal, and chunked
//! copy-on-write storage for O(changed pages) snapshot cloning.
//!
//! See the crate-level docs for the storage layout and the tombstone
//! lifecycle.

use crate::fxhash::{FxBuildHasher, FxHashMap};
use magic_datalog::arena::{decode_row, intern_row};
use magic_datalog::{ValId, Value};
use std::collections::HashSet;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A row (tuple) of ground values — the *boundary* representation, decoded
/// from the packed storage at the API edge.
pub type Row = Vec<Value>;

/// Rows per storage page (a power of two; see [`Page`]).
const PAGE_ROWS: usize = 4096;
/// `id >> PAGE_SHIFT` is the page of row `id`.
const PAGE_SHIFT: usize = 12;
/// `id & PAGE_MASK` is the page-local slot of row `id`.
const PAGE_MASK: usize = PAGE_ROWS - 1;
/// Liveness bitset words per page.
const PAGE_WORDS: usize = PAGE_ROWS / 64;

/// log2 of the dedup / index shard count.
const SHARD_BITS: usize = 4;
/// Number of copy-on-write shards the dedup table and each secondary
/// index are split into.  A write touches exactly one shard, so a shared
/// (published) relation re-clones at most `1/SHARDS` of a table per
/// mutated shard instead of the whole thing.
const SHARDS: usize = 1 << SHARD_BITS;

/// The shard a 64-bit row/key hash falls into (its top [`SHARD_BITS`]
/// bits; the map buckets inside the shard use the low bits).
#[inline]
fn shard_of(hash: u64) -> usize {
    (hash >> (64 - SHARD_BITS)) as usize
}

/// Process-wide count of copy-on-write unit clones: how many row pages,
/// dedup shards and index shards have been deep-cloned because a write
/// landed on a unit still shared with a snapshot.
static COW_CLONES: AtomicU64 = AtomicU64::new(0);

/// The process-wide copy-on-write clone counter (see [`cow_clones`]'s
/// uses in the snapshot tests): total row pages, dedup shards and index
/// shards deep-cloned by writes to shared relations since process start.
///
/// Cloning a [`Relation`] (or a whole database/catalog of them) never
/// bumps this — a clone is pure `Arc` pointer bumps; only the first write
/// to a unit that is still shared pays, and it pays once per unit per
/// publish cycle.  This is what makes an *idle* snapshot publish free and
/// a post-publish write O(touched units).
pub fn cow_clones() -> u64 {
    COW_CLONES.load(Ordering::Relaxed)
}

/// `Arc::make_mut` with clone accounting: transparently deep-clones the
/// unit when it is shared (bumping [`cow_clones`]), and is a plain
/// dereference when it is not.
fn cow_mut<T: Clone>(arc: &mut Arc<T>) -> &mut T {
    if Arc::get_mut(arc).is_none() {
        COW_CLONES.fetch_add(1, Ordering::Relaxed);
    }
    Arc::make_mut(arc)
}

/// One chunk of row storage: up to [`PAGE_ROWS`] packed rows plus their
/// liveness bits.  Pages are the unit of structural sharing — a cloned
/// relation shares every page with its original, and a later write
/// re-clones exactly the page it lands on (the append page, or the page
/// of a tombstoned row).
#[derive(Clone, Debug)]
struct Page {
    /// Packed rows: page-local row `r` occupies
    /// `data[r * arity .. (r + 1) * arity]`.
    data: Vec<ValId>,
    /// Liveness bitset, one bit per page-local row slot.
    live: [u64; PAGE_WORDS],
}

impl Page {
    fn empty() -> Page {
        Page {
            data: Vec::new(),
            live: [0; PAGE_WORDS],
        }
    }
}

/// The row ids sharing one row hash in the dedup table.
///
/// Hash collisions between distinct rows are ~nonexistent at 64 bits, so
/// the common case is a single id stored inline with no heap allocation;
/// the `Many` spill keeps correctness when a collision does happen.
#[derive(Clone, Debug)]
enum HashBucket {
    One(u32),
    Many(Vec<u32>),
}

impl HashBucket {
    fn ids(&self) -> &[u32] {
        match self {
            HashBucket::One(id) => std::slice::from_ref(id),
            HashBucket::Many(ids) => ids,
        }
    }

    fn push(&mut self, id: u32) {
        match self {
            HashBucket::One(first) => *self = HashBucket::Many(vec![*first, id]),
            HashBucket::Many(ids) => ids.push(id),
        }
    }

    /// Remove `id`; returns `true` when the bucket is now empty.
    fn remove(&mut self, id: u32) -> bool {
        match self {
            HashBucket::One(only) => *only == id,
            HashBucket::Many(ids) => {
                ids.retain(|&i| i != id);
                ids.is_empty()
            }
        }
    }
}

/// One copy-on-write shard of the dedup table: row hash → ids of live
/// rows with that hash.
type DedupShard = FxHashMap<u64, HashBucket>;

/// One copy-on-write shard of a *narrow* index: keys of ≤ 2 positions
/// packed into a single `u64` (two inline-tagged [`ValId`] raw words, the
/// second `NULL`-padded for unary keys) — no per-key allocation, no
/// node-table indirection, and a one-word hash per probe.
type SmallShard = FxHashMap<u64, Vec<usize>>;

/// One copy-on-write shard of a *wide* index (3+ key positions): boxed
/// packed key → ascending live row ids.
type WideShard = FxHashMap<Box<[ValId]>, Vec<usize>>;

/// A secondary index on one bound-position pattern, split into [`SHARDS`]
/// copy-on-write shards by key hash.  The representation is chosen once
/// per pattern: patterns of ≤ 2 positions store their keys inline as one
/// `u64` ([`pack_key2`]); wider patterns box the key slice.
#[derive(Clone, Debug)]
enum ShardedIndex {
    Small(Vec<Arc<SmallShard>>),
    Wide(Vec<Arc<WideShard>>),
}

/// Pack a ≤ 2-position key into one `u64`: the raw words of its (inline
/// tagged) `ValId`s, with the second slot `NULL`-padded for unary keys.
/// All keys of an index have the same length, so padding cannot collide
/// with a genuine two-position key inside one index.
#[inline]
fn pack_key2(key: &[ValId]) -> u64 {
    debug_assert!(!key.is_empty() && key.len() <= 2);
    let hi = key[0].raw() as u64;
    let lo = key.get(1).map_or(u32::MAX as u64, |v| v.raw() as u64);
    (hi << 32) | lo
}

impl ShardedIndex {
    fn empty(key_len: usize) -> ShardedIndex {
        if key_len <= 2 {
            ShardedIndex::Small(
                (0..SHARDS)
                    .map(|_| Arc::new(SmallShard::default()))
                    .collect(),
            )
        } else {
            ShardedIndex::Wide(
                (0..SHARDS)
                    .map(|_| Arc::new(WideShard::default()))
                    .collect(),
            )
        }
    }

    /// Append `id` to the ascending id list of `key` (the incremental
    /// index-maintenance step of an insert).
    fn insert_row(&mut self, key: &[ValId], id: usize) {
        let shard = shard_of(hash_ids(key));
        match self {
            ShardedIndex::Small(shards) => {
                cow_mut(&mut shards[shard])
                    .entry(pack_key2(key))
                    .or_default()
                    .push(id);
            }
            ShardedIndex::Wide(shards) => {
                let map = cow_mut(&mut shards[shard]);
                if let Some(ids) = map.get_mut(key) {
                    ids.push(id);
                } else {
                    map.insert(key.into(), vec![id]);
                }
            }
        }
    }

    /// Drop `id` from the id list of `key` (ids are ascending, so the
    /// victim is found by binary search); empty lists drop their key.
    fn remove_row(&mut self, key: &[ValId], id: usize) {
        fn drop_id<K: std::hash::Hash + Eq + Clone>(
            map: &mut FxHashMap<K, Vec<usize>>,
            key: K,
            id: usize,
        ) {
            if let Some(ids) = map.get_mut(&key) {
                if let Ok(pos) = ids.binary_search(&id) {
                    ids.remove(pos);
                }
                if ids.is_empty() {
                    map.remove(&key);
                }
            }
        }
        let shard = shard_of(hash_ids(key));
        match self {
            ShardedIndex::Small(shards) => {
                drop_id(cow_mut(&mut shards[shard]), pack_key2(key), id);
            }
            ShardedIndex::Wide(shards) => {
                let map = cow_mut(&mut shards[shard]);
                if let Some(ids) = map.get_mut(key) {
                    if let Ok(pos) = ids.binary_search(&id) {
                        ids.remove(pos);
                    }
                    if ids.is_empty() {
                        map.remove(key);
                    }
                }
            }
        }
    }

    /// The ascending live row ids of `key` (`None` when the key is
    /// absent — callers render that as the empty slice).
    fn get(&self, key: &[ValId]) -> Option<&Vec<usize>> {
        let shard = shard_of(hash_ids(key));
        match self {
            ShardedIndex::Small(shards) => shards[shard].get(&pack_key2(key)),
            ShardedIndex::Wide(shards) => shards[shard].get(key),
        }
    }
}

/// An in-memory relation: a set of rows of fixed arity, stored as interned
/// [`ValId`]s in chunked copy-on-write pages, with hash indexes built on
/// demand for the bound-position patterns the evaluator needs.
///
/// Rows are stored **once**, append-only in insertion order: row `id`
/// lives in page `id / 4096` at page-local offset `(id % 4096) × arity` —
/// so row ids are stable and iteration is deterministic.  Duplicate
/// elimination goes through a sharded row-hash → row-id table keyed on
/// the packed id slice (no `Value` hashing or cloning on any probe).
/// Indexes map a key — the ids at a fixed list of positions — to the ids
/// of the live rows having that key, kept in ascending id order, which is
/// what lets the evaluator slice delta windows out of them by binary
/// search.
///
/// **Every unit of storage — row pages, dedup shards, index shards — sits
/// behind an `Arc`**, so `Relation::clone` is pure pointer bumps: a clone
/// is an O(pages) *snapshot*, not a copy.  Writes go through
/// `Arc::make_mut`, re-cloning exactly the units they touch when those
/// are still shared with a snapshot (counted by [`cow_clones`]).  This is
/// the property the serving layer's publish path and the incremental
/// catalog's snapshots are built on.
///
/// Removal marks rows dead (tombstones) and surgically drops them from the
/// dedup table and every index — O(removed × indexes), never a rebuild of
/// the store.  Dead slots stay in their pages until [`Relation::compact`],
/// so row ids survive removals; [`Relation::watermark`] (the high-water
/// row id) is the monotone quantity delta windows are measured against,
/// while [`Relation::len`] counts live rows only.
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    /// Chunked copy-on-write row storage; row `id` lives in
    /// `pages[id >> PAGE_SHIFT]`.
    pages: Vec<Arc<Page>>,
    /// Number of row slots ever allocated (live + tombstoned).
    rows: usize,
    /// Number of tombstoned slots (`rows - live count`).
    dead: usize,
    /// Sharded dedup table: row hash -> ids of live rows with that hash.
    dedup: Vec<Arc<DedupShard>>,
    /// positions -> sharded index (key ids -> ascending live row ids).
    indexes: FxHashMap<Vec<usize>, ShardedIndex>,
    /// Reusable key buffer for incremental index maintenance.
    key_scratch: Vec<ValId>,
}

impl Default for Relation {
    fn default() -> Relation {
        Relation::new(0)
    }
}

fn hash_ids(row: &[ValId]) -> u64 {
    let mut state = FxBuildHasher::default().build_hasher();
    for id in row {
        state.write_u32(id.raw());
    }
    state.finish()
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            pages: Vec::new(),
            rows: 0,
            dead: 0,
            dedup: (0..SHARDS)
                .map(|_| Arc::new(DedupShard::default()))
                .collect(),
            indexes: FxHashMap::default(),
            key_scratch: Vec::new(),
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of **live** rows.
    pub fn len(&self) -> usize {
        self.rows - self.dead
    }

    /// True iff the relation has no live rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One past the highest row id ever allocated (live or dead).  This is
    /// the monotone delta mark: rows inserted after a caller observed
    /// `watermark()` have ids `>=` that observation, whatever removals
    /// happen in between.  Reset only by [`Relation::compact`].
    pub fn watermark(&self) -> usize {
        self.rows
    }

    /// Number of tombstoned row slots awaiting [`Relation::compact`].
    pub fn tombstones(&self) -> usize {
        self.dead
    }

    /// True iff row id `id` is live (in bounds and not tombstoned).
    #[inline]
    pub fn is_live(&self, id: usize) -> bool {
        id < self.rows && {
            let slot = id & PAGE_MASK;
            self.pages[id >> PAGE_SHIFT].live[slot >> 6] & (1 << (slot & 63)) != 0
        }
    }

    #[inline]
    fn clear_live(&mut self, id: usize) {
        let slot = id & PAGE_MASK;
        cow_mut(&mut self.pages[id >> PAGE_SHIFT]).live[slot >> 6] &= !(1 << (slot & 63));
    }

    /// Insert a row of values; returns `true` if it was new.  Interns the
    /// values and delegates to [`Relation::insert_ids`].
    ///
    /// # Panics
    ///
    /// Panics if the row's arity does not match the relation's.
    pub fn insert(&mut self, row: Row) -> bool {
        let ids = intern_row(&row);
        self.insert_ids(&ids)
    }

    /// Insert a packed row; returns `true` if it was new.  The storage hot
    /// path: one FxHash over the id slice, one dedup-shard probe for the
    /// duplicate check (duplicates touch nothing else — no copy-on-write
    /// traffic at all), and an append into the current page for new rows.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity does not match the relation's.
    pub fn insert_ids(&mut self, row: &[ValId]) -> bool {
        assert_eq!(
            row.len(),
            self.arity,
            "row arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        let hash = hash_ids(row);
        let shard = shard_of(hash);
        // Read-only duplicate probe: the overwhelmingly common duplicate
        // case never takes a write path (and so never clones a shared
        // shard).
        if let Some(bucket) = self.dedup[shard].get(&hash) {
            let arity = self.arity;
            let pages = &self.pages;
            if bucket.ids().iter().any(|&id| {
                let id = id as usize;
                let off = (id & PAGE_MASK) * arity;
                &pages[id >> PAGE_SHIFT].data[off..off + arity] == row
            }) {
                return false;
            }
        }
        let id = self.rows;
        let id32 = u32::try_from(id).expect("relation exceeds u32::MAX rows");
        match cow_mut(&mut self.dedup[shard]).entry(hash) {
            std::collections::hash_map::Entry::Occupied(mut entry) => entry.get_mut().push(id32),
            std::collections::hash_map::Entry::Vacant(entry) => {
                entry.insert(HashBucket::One(id32));
            }
        }
        // Maintain every index without allocating a fresh key per index:
        // the scratch buffer is reused, and an owned key is copied only the
        // first time a (wide) key value is seen.
        let mut scratch = std::mem::take(&mut self.key_scratch);
        for (positions, index) in self.indexes.iter_mut() {
            scratch.clear();
            scratch.extend(positions.iter().map(|&p| row[p]));
            index.insert_row(&scratch, id);
        }
        self.key_scratch = scratch;
        self.append_row_slot(row);
        true
    }

    /// Append `row` as the next (live) row slot; the shared tail of
    /// [`Relation::insert_ids`] and [`Relation::compact`].  Dedup/index
    /// bookkeeping is the caller's responsibility.
    fn append_row_slot(&mut self, row: &[ValId]) -> usize {
        let id = self.rows;
        if id & PAGE_MASK == 0 {
            let mut page = Page::empty();
            // The first page grows like a plain vector (small relations
            // stay small); once a relation overflows it, later pages are
            // allocated at exact full-page capacity up front.
            if id > 0 {
                page.data.reserve_exact(PAGE_ROWS * self.arity);
            }
            self.pages.push(Arc::new(page));
        }
        let page = cow_mut(self.pages.last_mut().expect("append page exists"));
        page.data.extend_from_slice(row);
        let slot = id & PAGE_MASK;
        page.live[slot >> 6] |= 1 << (slot & 63);
        self.rows += 1;
        id
    }

    /// True iff the relation contains the (value-level) row.
    pub fn contains(&self, row: &[Value]) -> bool {
        self.contains_ids(&intern_row(row))
    }

    /// True iff the relation contains the packed row.
    pub fn contains_ids(&self, row: &[ValId]) -> bool {
        self.find_id(row).is_some()
    }

    /// The stored id of a (value-level) row, if present and live.
    pub fn id_of(&self, row: &[Value]) -> Option<usize> {
        self.find_id(&intern_row(row))
    }

    /// The stored id of a packed row, if present and live.
    pub fn find_id(&self, row: &[ValId]) -> Option<usize> {
        let hash = hash_ids(row);
        let bucket = self.dedup[shard_of(hash)].get(&hash)?;
        bucket
            .ids()
            .iter()
            .map(|&id| id as usize)
            .find(|&id| self.row_ids(id) == row)
    }

    /// The packed row with the given id.  The id must be in bounds; dead
    /// rows still decode (their slots persist until compaction).
    #[inline]
    pub fn row_ids(&self, id: usize) -> &[ValId] {
        let off = (id & PAGE_MASK) * self.arity;
        &self.pages[id >> PAGE_SHIFT].data[off..off + self.arity]
    }

    /// The row with the given id, decoded to values.
    pub fn row_values(&self, id: usize) -> Row {
        decode_row(self.row_ids(id))
    }

    /// Iterate over all live rows (decoded) in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Row> + '_ {
        self.iter_ids().map(|(_, ids)| decode_row(ids))
    }

    /// Iterate over `(id, packed row)` for all live rows in id order.
    pub fn iter_ids(&self) -> impl Iterator<Item = (usize, &[ValId])> + '_ {
        (0..self.rows)
            .filter(|&id| self.is_live(id))
            .map(|id| (id, self.row_ids(id)))
    }

    /// Ensure an index exists on `positions` and return the matching live
    /// row ids for `key` as an owned vector.  Convenience wrapper over
    /// [`Relation::ensure_index`] + [`Relation::lookup`]; the evaluator's
    /// hot path uses those directly to borrow the id slice instead.
    ///
    /// An empty `positions` list means "no selection": all live row ids
    /// match.
    pub fn select_ids(&mut self, positions: &[usize], key: &[Value]) -> Vec<usize> {
        debug_assert_eq!(positions.len(), key.len());
        if positions.is_empty() {
            return (0..self.rows).filter(|&id| self.is_live(id)).collect();
        }
        self.ensure_index(positions);
        self.lookup(positions, &intern_row(key))
            .expect("index was just ensured")
            .to_vec()
    }

    /// Ensure an (incrementally maintained) hash index exists on
    /// `positions`.  Indexes are kept current by [`Relation::insert_ids`]
    /// and the removal entry points alike.
    ///
    /// Building over an already-populated relation takes the bulk sorted
    /// path: sort the live row ids by key, then insert one exactly-sized
    /// id vector per distinct key — one owned key per *group* instead of
    /// one per row, and no hash-map entry churn while the shards grow.
    /// The resulting index is identical (same keys, same ascending id
    /// lists) to the incremental build.
    pub fn ensure_index(&mut self, positions: &[usize]) {
        if positions.is_empty() || self.indexes.contains_key(positions) {
            return;
        }
        const BULK_BUILD_MIN: usize = 512;
        let index = if self.len() >= BULK_BUILD_MIN {
            self.build_index_bulk(positions)
        } else {
            let mut index = ShardedIndex::empty(positions.len());
            let mut key = Vec::with_capacity(positions.len());
            for (id, row) in self.iter_ids() {
                key.clear();
                key.extend(positions.iter().map(|&p| row[p]));
                index.insert_row(&key, id);
            }
            index
        };
        self.indexes.insert(positions.to_vec(), index);
    }

    /// The bulk sorted index build over the current live rows (see
    /// [`Relation::ensure_index`]).  Stable sort on the key projection
    /// keeps each group's ids in ascending order — the invariant the
    /// delta-window binary search relies on.
    fn build_index_bulk(&self, positions: &[usize]) -> ShardedIndex {
        let key_of = |id: usize| {
            let row = self.row_ids(id);
            positions.iter().map(move |&p| row[p].raw())
        };
        let mut ids: Vec<usize> = self.iter_ids().map(|(id, _)| id).collect();
        ids.sort_by(|&a, &b| key_of(a).cmp(key_of(b)));
        // Collect the group boundaries first so every shard map is
        // allocated once at its final size (no rehashing while 30M ids
        // stream in).
        let mut groups: Vec<(usize, usize)> = Vec::new();
        let mut i = 0;
        while i < ids.len() {
            let mut j = i + 1;
            while j < ids.len() && key_of(ids[j]).eq(key_of(ids[i])) {
                j += 1;
            }
            groups.push((i, j));
            i = j;
        }
        let mut per_shard = [0usize; SHARDS];
        let mut key = Vec::with_capacity(positions.len());
        for &(start, _) in &groups {
            let row = self.row_ids(ids[start]);
            key.clear();
            key.extend(positions.iter().map(|&p| row[p]));
            per_shard[shard_of(hash_ids(&key))] += 1;
        }
        let mut index = if positions.len() <= 2 {
            ShardedIndex::Small(
                per_shard
                    .iter()
                    .map(|&n| {
                        Arc::new(SmallShard::with_capacity_and_hasher(
                            n,
                            FxBuildHasher::default(),
                        ))
                    })
                    .collect(),
            )
        } else {
            ShardedIndex::Wide(
                per_shard
                    .iter()
                    .map(|&n| {
                        Arc::new(WideShard::with_capacity_and_hasher(
                            n,
                            FxBuildHasher::default(),
                        ))
                    })
                    .collect(),
            )
        };
        for &(start, end) in &groups {
            let row = self.row_ids(ids[start]);
            key.clear();
            key.extend(positions.iter().map(|&p| row[p]));
            let shard = shard_of(hash_ids(&key));
            let group = ids[start..end].to_vec();
            match &mut index {
                ShardedIndex::Small(shards) => {
                    cow_mut(&mut shards[shard]).insert(pack_key2(&key), group);
                }
                ShardedIndex::Wide(shards) => {
                    cow_mut(&mut shards[shard]).insert(key.as_slice().into(), group);
                }
            }
        }
        index
    }

    /// Look up the live row ids matching the packed `key` on a previously
    /// ensured index.
    ///
    /// This is the join's single hot-path entry point: the returned slice is
    /// borrowed (never copied), contains live rows only, and its ids are in
    /// **ascending order** — semi-naive delta windows are binary-searched
    /// out of it.  Returns `None` if no index exists on `positions`
    /// (callers fall back to [`Relation::scan_select`]).
    pub fn lookup(&self, positions: &[usize], key: &[ValId]) -> Option<&[usize]> {
        let index = self.indexes.get(positions)?;
        Some(index.get(key).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Like [`Relation::select_ids`] (packed key) but without building or
    /// using indexes (linear scan over live rows, ids ascending).  Useful
    /// for read-only access paths.
    pub fn scan_select(&self, positions: &[usize], key: &[ValId]) -> Vec<usize> {
        self.iter_ids()
            .filter(|(_, row)| positions.iter().zip(key).all(|(&p, v)| &row[p] == v))
            .map(|(id, _)| id)
            .collect()
    }

    /// Project the relation onto the given positions, returning the distinct
    /// projected rows (decoded) in first-appearance order.
    pub fn project(&self, positions: &[usize]) -> Vec<Row> {
        let mut seen: HashSet<Box<[ValId]>> = HashSet::new();
        let mut out = Vec::new();
        for (_, row) in self.iter_ids() {
            let projected: Box<[ValId]> = positions.iter().map(|&p| row[p]).collect();
            if !seen.contains(&projected) {
                out.push(decode_row(&projected));
                seen.insert(projected);
            }
        }
        out
    }

    /// Remove one (value-level) row; returns `true` if it was present.
    /// Tombstone-based: O(indexes), no rebuild.
    pub fn remove(&mut self, row: &[Value]) -> bool {
        match self.id_of(row) {
            Some(id) => self.remove_id(id),
            None => false,
        }
    }

    /// Remove every row of `rows` that is present; returns how many were.
    /// Each removal is an independent tombstone mark — there is no longer a
    /// batching advantage over repeated [`Relation::remove`] calls, but the
    /// batched signature is kept for callers that collect rows first.
    pub fn remove_rows(&mut self, rows: &[Row]) -> usize {
        let mut removed = 0;
        for row in rows {
            if self.remove(row) {
                removed += 1;
            }
        }
        removed
    }

    /// Tombstone the row with id `id`; returns `false` if it was already
    /// dead.  Row ids are **stable** across removals: the slot persists
    /// (dead) until [`Relation::compact`], so ids and delta marks taken
    /// before the removal stay valid.  The dedup table and every index drop
    /// the id eagerly, so lookups and scans never observe dead rows.
    pub fn remove_id(&mut self, id: usize) -> bool {
        if !self.is_live(id) {
            return false;
        }
        self.clear_live(id);
        self.dead += 1;
        let id32 = id as u32;
        let hash = hash_ids(self.row_ids(id));
        let dedup_shard = cow_mut(&mut self.dedup[shard_of(hash)]);
        if let Some(bucket) = dedup_shard.get_mut(&hash) {
            if bucket.remove(id32) {
                dedup_shard.remove(&hash);
            }
        }
        let mut scratch = std::mem::take(&mut self.key_scratch);
        let arity = self.arity;
        let page = &self.pages[id >> PAGE_SHIFT];
        let off = (id & PAGE_MASK) * arity;
        let row = &page.data[off..off + arity];
        for (positions, index) in self.indexes.iter_mut() {
            scratch.clear();
            scratch.extend(positions.iter().map(|&p| row[p]));
            index.remove_row(&scratch, id);
        }
        self.key_scratch = scratch;
        true
    }

    /// Reclaim tombstoned slots: rewrite the pages with live rows only (in
    /// id order), rebuild the dedup table, and rebuild every existing index
    /// on its same position pattern.  **Row ids shift** — any ids, delta
    /// marks or watermarks taken before compaction are invalidated, so only
    /// call between operations (the incremental layer compacts after a
    /// retraction batch, before taking fresh marks).
    pub fn compact(&mut self) {
        if self.dead == 0 {
            return;
        }
        let old_pages = std::mem::take(&mut self.pages);
        let old_rows = self.rows;
        let arity = self.arity;
        self.rows = 0;
        self.dead = 0;
        self.dedup = (0..SHARDS)
            .map(|_| Arc::new(DedupShard::default()))
            .collect();
        for id in 0..old_rows {
            let slot = id & PAGE_MASK;
            let page = &old_pages[id >> PAGE_SHIFT];
            if page.live[slot >> 6] & (1 << (slot & 63)) == 0 {
                continue;
            }
            let row = &page.data[slot * arity..(slot + 1) * arity];
            let id32 = u32::try_from(self.rows).expect("relation exceeds u32::MAX rows");
            // Rows are unique (they survived the live dedup), so no
            // duplicate check — just record the id under the row hash.
            let hash = hash_ids(row);
            match cow_mut(&mut self.dedup[shard_of(hash)]).entry(hash) {
                std::collections::hash_map::Entry::Occupied(mut entry) => {
                    entry.get_mut().push(id32)
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(HashBucket::One(id32));
                }
            }
            self.append_row_slot(row);
        }
        let patterns: Vec<Vec<usize>> = self.indexes.keys().cloned().collect();
        self.indexes.clear();
        for positions in patterns {
            self.ensure_index(&positions);
        }
    }

    /// Merge all rows of `other` into `self`; returns the number of new rows.
    pub fn merge(&mut self, other: &Relation) -> usize {
        let mut added = 0;
        for (_, row) in other.iter_ids() {
            if self.insert_ids(row) {
                added += 1;
            }
        }
        added
    }

    /// The live rows, packed flat in id order: `len() × arity()` ids,
    /// row `r` at `r × arity .. (r + 1) × arity`.  This is the
    /// (de)serialization surface checkpointing reads — tombstones are
    /// skipped, so the dump is exactly what
    /// [`Relation::from_packed_rows`] rebuilds (a checkpoint/restore
    /// cycle implies a compaction).  Note the ids are process-run-local;
    /// a cross-process consumer must pair the dump with an
    /// [`ArenaSnapshot`](magic_datalog::ArenaSnapshot) and remap on load.
    pub fn packed_live_rows(&self) -> Vec<ValId> {
        let mut out = Vec::with_capacity(self.len() * self.arity);
        for (_, row) in self.iter_ids() {
            out.extend_from_slice(row);
        }
        out
    }

    /// Rebuild a relation from a flat packed dump of `n_rows` rows (the
    /// inverse of [`Relation::packed_live_rows`], after any cross-process
    /// id remapping).  Rows are inserted in dump order, so ids come out
    /// dense `0..n_rows`; duplicate rows in the dump are deduplicated
    /// like any insert.  `n_rows` is explicit so zero-arity relations
    /// (whose rows serialize no ids at all) round-trip too.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != n_rows * arity`.
    pub fn from_packed_rows(arity: usize, n_rows: usize, ids: &[ValId]) -> Relation {
        assert_eq!(
            ids.len(),
            n_rows * arity,
            "packed dump length {} does not match {n_rows} rows of arity {arity}",
            ids.len()
        );
        let mut rel = Relation::new(arity);
        if arity == 0 {
            for _ in 0..n_rows {
                rel.insert_ids(&[]);
            }
        } else {
            for row in ids.chunks_exact(arity) {
                rel.insert_ids(row);
            }
        }
        rel
    }

    /// A read-only snapshot of this relation pinned at the current
    /// [`Relation::watermark`] — the share-safe view the engine's parallel
    /// workers read through.  See [`RelationSnapshot`].
    ///
    /// This borrow-scoped form is O(1) and lock-free; for an *owned*
    /// snapshot that outlives the relation, `Relation::clone` is the
    /// entry point — it is pure `Arc` pointer bumps over the shared
    /// pages/shards (O(pages), no row copying; see [`cow_clones`]).
    pub fn snapshot(&self) -> RelationSnapshot<'_> {
        RelationSnapshot {
            relation: self,
            watermark: self.watermark(),
        }
    }
}

/// A borrowed, read-only view of a [`Relation`] at a fixed watermark.
///
/// This is the storage surface the engine's work-sharded evaluation reads
/// concurrently: packed id slices and index lookups behind `&self`, with
/// **no locks anywhere on the probe path** — a `Relation` has no interior
/// mutability, so any number of workers may probe it while nobody holds
/// `&mut`.  The engine's fixpoint alternates a read-only evaluation phase
/// (workers joining over snapshots, writing packed head rows into
/// per-worker output shards) with a merge phase that inserts the shards
/// in deterministic order; insert-side **dedup therefore lives entirely
/// behind the merge step**, never in the join workers.
///
/// The pinned watermark is the delta bound: rows with ids `>=`
/// [`RelationSnapshot::watermark`] were inserted after the snapshot was
/// taken and are invisible to it.
#[derive(Clone, Copy, Debug)]
pub struct RelationSnapshot<'a> {
    relation: &'a Relation,
    watermark: usize,
}

impl<'a> RelationSnapshot<'a> {
    /// The underlying relation.
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }

    /// The pinned high-water row id: the snapshot covers ids `0..watermark`.
    pub fn watermark(&self) -> usize {
        self.watermark
    }

    /// True iff `id` is within the snapshot and live.
    pub fn is_live(&self, id: usize) -> bool {
        id < self.watermark && self.relation.is_live(id)
    }

    /// The packed row with the given id (see [`Relation::row_ids`]).
    pub fn row_ids(&self, id: usize) -> &'a [ValId] {
        self.relation.row_ids(id)
    }

    /// Index lookup over the snapshot: the matching live row ids with the
    /// post-snapshot tail (ids `>= watermark`) sliced off.  Borrowed, in
    /// ascending order, like [`Relation::lookup`].
    pub fn lookup(&self, positions: &[usize], key: &[ValId]) -> Option<&'a [usize]> {
        let ids = self.relation.lookup(positions, key)?;
        let hi = ids.partition_point(|&id| id < self.watermark);
        Some(&ids[..hi])
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        // Set equality: both sides are duplicate-free, so equal live counts
        // plus one-way containment suffice.
        self.arity == other.arity
            && self.len() == other.len()
            && self.iter_ids().all(|(_, row)| other.contains_ids(row))
    }
}

impl Eq for Relation {}

impl FromIterator<Row> for Relation {
    fn from_iter<T: IntoIterator<Item = Row>>(iter: T) -> Self {
        let rows: Vec<Row> = iter.into_iter().collect();
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut rel = Relation::new(arity);
        for r in rows {
            rel.insert(r);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    #[test]
    fn insert_and_dedup() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![v("a"), v("b")]));
        assert!(!r.insert(vec![v("a"), v("b")]));
        assert!(r.insert(vec![v("a"), v("c")]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[v("a"), v("b")]));
        assert!(!r.contains(&[v("b"), v("a")]));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(vec![v("a")]);
    }

    #[test]
    fn select_builds_index_and_stays_current() {
        let mut r = Relation::new(2);
        r.insert(vec![v("a"), v("b")]);
        r.insert(vec![v("a"), v("c")]);
        r.insert(vec![v("d"), v("e")]);
        let ids = r.select_ids(&[0], &[v("a")]);
        assert_eq!(ids.len(), 2);
        // Index must be maintained across later inserts.
        r.insert(vec![v("a"), v("f")]);
        let ids = r.select_ids(&[0], &[v("a")]);
        assert_eq!(ids.len(), 3);
        // Multi-position keys.
        let ids = r.select_ids(&[0, 1], &[v("a"), v("c")]);
        assert_eq!(ids.len(), 1);
        assert_eq!(r.row_values(ids[0]), vec![v("a"), v("c")]);
        // Missing keys return nothing.
        assert!(r.select_ids(&[0], &[v("zzz")]).is_empty());
        // Empty position list selects everything.
        assert_eq!(r.select_ids(&[], &[]).len(), 4);
    }

    #[test]
    fn index_ids_stay_ascending_across_inserts() {
        // The delta-window binary search relies on this invariant.
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        for i in 0..40i64 {
            r.insert(vec![Value::Int(i % 4), Value::Int(i)]);
        }
        for k in 0..4i64 {
            let ids = r
                .lookup(&[0], &intern_row(&[Value::Int(k)]))
                .unwrap()
                .to_vec();
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids not ascending");
            assert_eq!(ids.len(), 10);
        }
    }

    #[test]
    fn wide_index_keys_work_like_narrow_ones() {
        // 3+ key positions take the boxed-key representation; behaviour
        // must be indistinguishable from the packed ≤2-position form.
        let mut r = Relation::new(4);
        r.ensure_index(&[0, 1, 2]);
        for i in 0..50i64 {
            r.insert(vec![
                Value::Int(i % 2),
                Value::Int(i % 3),
                Value::Int(i % 5),
                Value::Int(i),
            ]);
        }
        let key = intern_row(&[Value::Int(1), Value::Int(1), Value::Int(1)]);
        let ids = r.lookup(&[0, 1, 2], &key).unwrap().to_vec();
        assert!(!ids.is_empty());
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids, r.scan_select(&[0, 1, 2], &key));
        let (id, _) = r.iter_ids().next().unwrap();
        r.remove_id(id);
        let after = r.lookup(&[0, 1, 2], &key).unwrap();
        assert!(!after.contains(&id));
    }

    #[test]
    fn scan_select_agrees_with_index() {
        let mut r = Relation::new(3);
        for i in 0..10i64 {
            r.insert(vec![Value::Int(i % 3), Value::Int(i), Value::Int(i * 2)]);
        }
        let key = intern_row(&[Value::Int(1)]);
        let scanned = r.scan_select(&[0], &key);
        let indexed = r.select_ids(&[0], &[Value::Int(1)]);
        assert_eq!(scanned, indexed);
    }

    #[test]
    fn project_dedups() {
        let mut r = Relation::new(2);
        r.insert(vec![v("a"), v("b")]);
        r.insert(vec![v("a"), v("c")]);
        r.insert(vec![v("d"), v("b")]);
        let proj = r.project(&[0]);
        assert_eq!(proj, vec![vec![v("a")], vec![v("d")]]);
        let proj = r.project(&[1, 0]);
        assert_eq!(proj.len(), 3);
    }

    #[test]
    fn merge_counts_new_rows() {
        let mut a = Relation::new(1);
        a.insert(vec![v("x")]);
        let mut b = Relation::new(1);
        b.insert(vec![v("x")]);
        b.insert(vec![v("y")]);
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Relation::new(1);
        a.insert(vec![v("x")]);
        a.insert(vec![v("y")]);
        let mut b = Relation::new(1);
        b.insert(vec![v("y")]);
        b.insert(vec![v("x")]);
        assert_eq!(a, b);
        b.insert(vec![v("z")]);
        assert_ne!(a, b);
    }

    #[test]
    fn remove_keeps_dedup_and_indexes_consistent() {
        let mut r = Relation::new(2);
        r.insert(vec![v("a"), v("b")]);
        r.insert(vec![v("a"), v("c")]);
        r.insert(vec![v("d"), v("e")]);
        r.ensure_index(&[0]);
        assert!(r.remove(&[v("a"), v("b")]));
        assert!(!r.remove(&[v("a"), v("b")]));
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&[v("a"), v("b")]));
        // Index answers reflect the removal and later inserts still work.
        let key_a = intern_row(&[v("a")]);
        assert_eq!(r.lookup(&[0], &key_a).unwrap().len(), 1);
        assert!(r.insert(vec![v("a"), v("b")]));
        assert_eq!(r.lookup(&[0], &key_a).unwrap().len(), 2);
        assert!(r
            .lookup(&[0], &key_a)
            .unwrap()
            .windows(2)
            .all(|w| w[0] < w[1]));
    }

    #[test]
    fn remove_tombstones_and_preserves_row_ids() {
        let mut r = Relation::new(1);
        for s in ["a", "b", "c", "d"] {
            r.insert(vec![v(s)]);
        }
        let removed = r.remove_rows(&[vec![v("b")], vec![v("zzz")], vec![v("d")]]);
        assert_eq!(removed, 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.tombstones(), 2);
        assert_eq!(r.watermark(), 4);
        assert!(r.contains(&[v("a")]));
        assert!(r.contains(&[v("c")]));
        // Ids are stable: survivors keep their slots.
        assert_eq!(r.id_of(&[v("a")]), Some(0));
        assert_eq!(r.id_of(&[v("c")]), Some(2));
        assert_eq!(r.id_of(&[v("b")]), None);
        assert!(!r.is_live(1));
        // Iteration skips tombstones.
        let rows: Vec<Row> = r.iter().collect();
        assert_eq!(rows, vec![vec![v("a")], vec![v("c")]]);
        // Re-inserting a removed row appends a fresh id past the watermark.
        assert!(r.insert(vec![v("b")]));
        assert_eq!(r.id_of(&[v("b")]), Some(4));
        assert_eq!(r.watermark(), 5);
    }

    #[test]
    fn compact_reclaims_tombstones_and_renumbers() {
        let mut r = Relation::new(1);
        for s in ["a", "b", "c", "d"] {
            r.insert(vec![v(s)]);
        }
        r.ensure_index(&[0]);
        r.remove(&[v("a")]);
        r.remove(&[v("c")]);
        r.compact();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tombstones(), 0);
        assert_eq!(r.watermark(), 2);
        // Survivors are renumbered densely in former id order.
        assert_eq!(r.id_of(&[v("b")]), Some(0));
        assert_eq!(r.id_of(&[v("d")]), Some(1));
        // Indexes were rebuilt on the same pattern and stay maintained.
        assert_eq!(r.lookup(&[0], &intern_row(&[v("b")])).unwrap(), &[0]);
        assert!(r.insert(vec![v("e")]));
        assert_eq!(r.lookup(&[0], &intern_row(&[v("e")])).unwrap(), &[2]);
        // Compacting a tombstone-free relation is a no-op.
        r.compact();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn hash_bucket_collision_spill() {
        let mut bucket = HashBucket::One(3);
        assert_eq!(bucket.ids(), &[3]);
        bucket.push(9);
        assert_eq!(bucket.ids(), &[3, 9]);
        bucket.push(12);
        assert_eq!(bucket.ids(), &[3, 9, 12]);
        assert!(!bucket.remove(9));
        assert_eq!(bucket.ids(), &[3, 12]);
    }

    #[test]
    fn snapshot_pins_the_watermark_against_later_inserts() {
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        r.insert(vec![v("a"), v("b")]);
        r.insert(vec![v("a"), v("c")]);
        r.insert(vec![v("d"), v("e")]);
        // Tombstone one row so liveness and watermark diverge.
        r.remove(&[v("a"), v("c")]);
        let snap = r.snapshot();
        assert_eq!(snap.watermark(), 3);
        assert!(snap.is_live(0));
        assert!(!snap.is_live(1)); // tombstoned
        assert!(!snap.is_live(3)); // out of snapshot
        assert_eq!(snap.row_ids(0), intern_row(&[v("a"), v("b")]).as_slice());
        let key_a = intern_row(&[v("a")]);
        assert_eq!(snap.lookup(&[0], &key_a).unwrap(), &[0]);
        assert_eq!(snap.relation().len(), 2);
        // A post-snapshot insert is invisible through the sliced lookup
        // (the `&'a` borrows outlive the snapshot value itself, so this
        // is checked against a second relation instead of aliasing).
        let mut grown = r.clone();
        let pinned = grown.watermark();
        grown.insert(vec![v("a"), v("z")]);
        let snap = RelationSnapshot {
            relation: &grown,
            watermark: pinned,
        };
        assert_eq!(snap.lookup(&[0], &key_a).unwrap(), &[0]);
        assert_eq!(grown.lookup(&[0], &key_a).unwrap(), &[0, 3]);
    }

    #[test]
    fn cloned_relation_is_isolated_from_later_writes() {
        // The copy-on-write contract at the semantic level: a clone is a
        // self-contained snapshot, whatever the original does afterwards
        // — and vice versa.
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        for i in 0..100i64 {
            r.insert(vec![Value::Int(i % 7), Value::Int(i)]);
        }
        let snap = r.clone();
        for i in 100..200i64 {
            r.insert(vec![Value::Int(i % 7), Value::Int(i)]);
        }
        r.remove(&[Value::Int(0), Value::Int(0)]);
        assert_eq!(snap.len(), 100);
        assert_eq!(r.len(), 199);
        assert!(snap.contains(&[Value::Int(0), Value::Int(0)]));
        assert!(!r.contains(&[Value::Int(0), Value::Int(0)]));
        let key = intern_row(&[Value::Int(3)]);
        assert_eq!(
            snap.lookup(&[0], &key).unwrap(),
            snap.scan_select(&[0], &key).as_slice()
        );
        assert_eq!(
            r.lookup(&[0], &key).unwrap(),
            r.scan_select(&[0], &key).as_slice()
        );
    }

    #[test]
    fn pages_span_boundaries_transparently() {
        // Cross the 4096-row page boundary and make sure ids, iteration,
        // dedup and index answers behave exactly as in the flat layout.
        let mut r = Relation::new(2);
        r.ensure_index(&[0]);
        let n = (PAGE_ROWS + 100) as i64;
        for i in 0..n {
            assert!(r.insert(vec![Value::Int(i % 3), Value::Int(i)]));
        }
        for i in 0..n {
            assert!(!r.insert(vec![Value::Int(i % 3), Value::Int(i)]));
        }
        assert_eq!(r.len(), n as usize);
        assert_eq!(
            r.row_ids(PAGE_ROWS),
            intern_row(&[
                Value::Int(PAGE_ROWS as i64 % 3),
                Value::Int(PAGE_ROWS as i64)
            ])
            .as_slice()
        );
        let key = intern_row(&[Value::Int(1)]);
        let ids = r.lookup(&[0], &key).unwrap();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids.len(), r.scan_select(&[0], &key).len());
        assert_eq!(r.iter_ids().count(), n as usize);
    }

    #[test]
    fn bulk_index_build_matches_the_incremental_build() {
        // Above the bulk threshold, with duplicates per key and some
        // tombstones: the sorted bulk path must produce exactly the
        // ascending id lists the per-row path would.
        let mut bulk = Relation::new(2);
        for i in 0..1500i64 {
            bulk.insert(vec![Value::Int(i % 37), Value::Int(i)]);
        }
        for i in (0..1500i64).step_by(5) {
            bulk.remove(&[Value::Int(i % 37), Value::Int(i)]);
        }
        let mut incremental = bulk.clone();
        bulk.ensure_index(&[0]); // len >= 512: bulk path
                                 // Force the per-row path by building on an empty clone and
                                 // replaying inserts through index maintenance instead.
        incremental.ensure_index(&[1]);
        incremental.ensure_index(&[0]); // also bulk; compare vs scan
        for k in 0..37i64 {
            let key = intern_row(&[Value::Int(k)]);
            let ids = bulk.lookup(&[0], &key).unwrap();
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids not ascending");
            assert_eq!(ids, bulk.scan_select(&[0], &key), "bulk != scan");
            assert_eq!(ids, incremental.lookup(&[0], &key).unwrap());
        }
    }

    #[test]
    fn packed_dump_round_trips_and_skips_tombstones() {
        let mut r = Relation::new(2);
        for i in 0..20i64 {
            r.insert(vec![Value::Int(i % 5), Value::Int(i)]);
        }
        r.remove(&[Value::Int(2), Value::Int(7)]);
        r.remove(&[Value::Int(0), Value::Int(15)]);
        let dump = r.packed_live_rows();
        assert_eq!(dump.len(), r.len() * r.arity());
        let rebuilt = Relation::from_packed_rows(2, r.len(), &dump);
        assert_eq!(rebuilt, r);
        assert_eq!(rebuilt.tombstones(), 0);
        // Ids came out dense in dump order.
        assert_eq!(rebuilt.watermark(), r.len());
        // Zero-arity relations round-trip through the explicit row count.
        let mut b = Relation::new(0);
        b.insert_ids(&[]);
        let rebuilt = Relation::from_packed_rows(0, b.len(), &b.packed_live_rows());
        assert_eq!(rebuilt.len(), 1);
        let empty = Relation::from_packed_rows(0, 0, &[]);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "packed dump length")]
    fn packed_dump_length_mismatch_panics() {
        Relation::from_packed_rows(2, 3, &intern_row(&[v("a"), v("b")]));
    }

    #[test]
    fn dedup_survives_many_inserts() {
        // Exercise the dedup table with enough rows that any hashing bug
        // would show as phantom duplicates.
        let mut r = Relation::new(2);
        for i in 0..1000i64 {
            assert!(r.insert(vec![Value::Int(i / 25), Value::Int(i % 25)]));
        }
        for i in 0..1000i64 {
            assert!(!r.insert(vec![Value::Int(i / 25), Value::Int(i % 25)]));
            assert!(r.contains(&[Value::Int(i / 25), Value::Int(i % 25)]));
        }
        assert_eq!(r.len(), 1000);
    }
}
