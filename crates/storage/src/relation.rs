//! In-memory relations with hash indexes on bound-position patterns.

use magic_datalog::Value;
use std::collections::HashMap;
use std::collections::HashSet;

/// A row (tuple) of ground values.
pub type Row = Vec<Value>;

/// An in-memory relation: a set of rows of fixed arity, with hash indexes
/// built on demand for the bound-position patterns the evaluator needs.
///
/// Rows are stored append-only in insertion order (so iteration is
/// deterministic) with a hash set for duplicate elimination.  Indexes map a
/// key — the values at a fixed list of positions — to the list of row ids
/// having that key, and are maintained incrementally on insert.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Row>,
    present: HashSet<Row>,
    /// positions -> key values -> row ids
    indexes: HashMap<Vec<usize>, HashMap<Vec<Value>, Vec<usize>>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            rows: Vec::new(),
            present: HashSet::new(),
            indexes: HashMap::new(),
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity does not match the relation's.
    pub fn insert(&mut self, row: Row) -> bool {
        assert_eq!(
            row.len(),
            self.arity,
            "row arity {} does not match relation arity {}",
            row.len(),
            self.arity
        );
        if self.present.contains(&row) {
            return false;
        }
        let id = self.rows.len();
        for (positions, index) in self.indexes.iter_mut() {
            let key: Vec<Value> = positions.iter().map(|&p| row[p].clone()).collect();
            index.entry(key).or_default().push(id);
        }
        self.present.insert(row.clone());
        self.rows.push(row);
        true
    }

    /// True iff the relation contains `row`.
    pub fn contains(&self, row: &[Value]) -> bool {
        self.present.contains(row)
    }

    /// Iterate over all rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> + '_ {
        self.rows.iter()
    }

    /// The row with the given id (insertion order).
    pub fn row(&self, id: usize) -> &Row {
        &self.rows[id]
    }

    /// Rows with ids in `from..` (used by delta-based evaluation).
    pub fn rows_from(&self, from: usize) -> &[Row] {
        &self.rows[from.min(self.rows.len())..]
    }

    /// Ensure an index exists on `positions` and return the matching row ids
    /// for `key` (the values at those positions).
    ///
    /// An empty `positions` list means "no selection": all row ids match.
    pub fn select_ids(&mut self, positions: &[usize], key: &[Value]) -> Vec<usize> {
        debug_assert_eq!(positions.len(), key.len());
        if positions.is_empty() {
            return (0..self.rows.len()).collect();
        }
        if !self.indexes.contains_key(positions) {
            let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (id, row) in self.rows.iter().enumerate() {
                let k: Vec<Value> = positions.iter().map(|&p| row[p].clone()).collect();
                index.entry(k).or_default().push(id);
            }
            self.indexes.insert(positions.to_vec(), index);
        }
        self.indexes[positions]
            .get(key)
            .cloned()
            .unwrap_or_default()
    }

    /// Ensure a (incrementally maintained) hash index exists on `positions`.
    pub fn ensure_index(&mut self, positions: &[usize]) {
        if positions.is_empty() || self.indexes.contains_key(positions) {
            return;
        }
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (id, row) in self.rows.iter().enumerate() {
            let k: Vec<Value> = positions.iter().map(|&p| row[p].clone()).collect();
            index.entry(k).or_default().push(id);
        }
        self.indexes.insert(positions.to_vec(), index);
    }

    /// Look up the row ids matching `key` on a previously ensured index.
    /// Returns `None` if no index exists on `positions` (callers fall back to
    /// [`Relation::scan_select`]).
    pub fn lookup(&self, positions: &[usize], key: &[Value]) -> Option<&[usize]> {
        let index = self.indexes.get(positions)?;
        Some(index.get(key).map(Vec::as_slice).unwrap_or(&[]))
    }

    /// Like [`Relation::select_ids`] but without building or using indexes
    /// (linear scan).  Useful for read-only access paths.
    pub fn scan_select(&self, positions: &[usize], key: &[Value]) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| positions.iter().zip(key).all(|(&p, v)| &row[p] == v))
            .map(|(id, _)| id)
            .collect()
    }

    /// Project the relation onto the given positions, returning the distinct
    /// projected rows in first-appearance order.
    pub fn project(&self, positions: &[usize]) -> Vec<Row> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            let projected: Row = positions.iter().map(|&p| row[p].clone()).collect();
            if seen.insert(projected.clone()) {
                out.push(projected);
            }
        }
        out
    }

    /// Merge all rows of `other` into `self`; returns the number of new rows.
    pub fn merge(&mut self, other: &Relation) -> usize {
        let mut added = 0;
        for row in other.iter() {
            if self.insert(row.clone()) {
                added += 1;
            }
        }
        added
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.present == other.present
    }
}

impl Eq for Relation {}

impl FromIterator<Row> for Relation {
    fn from_iter<T: IntoIterator<Item = Row>>(iter: T) -> Self {
        let rows: Vec<Row> = iter.into_iter().collect();
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut rel = Relation::new(arity);
        for r in rows {
            rel.insert(r);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    #[test]
    fn insert_and_dedup() {
        let mut r = Relation::new(2);
        assert!(r.insert(vec![v("a"), v("b")]));
        assert!(!r.insert(vec![v("a"), v("b")]));
        assert!(r.insert(vec![v("a"), v("c")]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[v("a"), v("b")]));
        assert!(!r.contains(&[v("b"), v("a")]));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(vec![v("a")]);
    }

    #[test]
    fn select_builds_index_and_stays_current() {
        let mut r = Relation::new(2);
        r.insert(vec![v("a"), v("b")]);
        r.insert(vec![v("a"), v("c")]);
        r.insert(vec![v("d"), v("e")]);
        let ids = r.select_ids(&[0], &[v("a")]);
        assert_eq!(ids.len(), 2);
        // Index must be maintained across later inserts.
        r.insert(vec![v("a"), v("f")]);
        let ids = r.select_ids(&[0], &[v("a")]);
        assert_eq!(ids.len(), 3);
        // Multi-position keys.
        let ids = r.select_ids(&[0, 1], &[v("a"), v("c")]);
        assert_eq!(ids.len(), 1);
        assert_eq!(r.row(ids[0]), &vec![v("a"), v("c")]);
        // Missing keys return nothing.
        assert!(r.select_ids(&[0], &[v("zzz")]).is_empty());
        // Empty position list selects everything.
        assert_eq!(r.select_ids(&[], &[]).len(), 4);
    }

    #[test]
    fn scan_select_agrees_with_index() {
        let mut r = Relation::new(3);
        for i in 0..10i64 {
            r.insert(vec![Value::Int(i % 3), Value::Int(i), Value::Int(i * 2)]);
        }
        let scanned = r.scan_select(&[0], &[Value::Int(1)]);
        let indexed = r.select_ids(&[0], &[Value::Int(1)]);
        assert_eq!(scanned, indexed);
    }

    #[test]
    fn project_dedups() {
        let mut r = Relation::new(2);
        r.insert(vec![v("a"), v("b")]);
        r.insert(vec![v("a"), v("c")]);
        r.insert(vec![v("d"), v("b")]);
        let proj = r.project(&[0]);
        assert_eq!(proj, vec![vec![v("a")], vec![v("d")]]);
        let proj = r.project(&[1, 0]);
        assert_eq!(proj.len(), 3);
    }

    #[test]
    fn merge_counts_new_rows() {
        let mut a = Relation::new(1);
        a.insert(vec![v("x")]);
        let mut b = Relation::new(1);
        b.insert(vec![v("x")]);
        b.insert(vec![v("y")]);
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn rows_from_slices_deltas() {
        let mut r = Relation::new(1);
        r.insert(vec![v("a")]);
        r.insert(vec![v("b")]);
        r.insert(vec![v("c")]);
        assert_eq!(r.rows_from(1).len(), 2);
        assert_eq!(r.rows_from(5).len(), 0);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Relation::new(1);
        a.insert(vec![v("x")]);
        a.insert(vec![v("y")]);
        let mut b = Relation::new(1);
        b.insert(vec![v("y")]);
        b.insert(vec![v("x")]);
        assert_eq!(a, b);
    }
}
