//! Databases: named collections of relations (the EDB, and the IDB produced
//! by evaluation).

use crate::relation::{Relation, Row};
use magic_datalog::{Fact, PredName, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A database: a finite set of finite relations, keyed by predicate name.
///
/// The same type stores the extensional database (base facts) and the
/// derived relations an evaluation produces.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<PredName, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database {
            relations: BTreeMap::new(),
        }
    }

    /// Build a database from an iterator of facts.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> Database {
        let mut db = Database::new();
        for f in facts {
            db.insert_fact(&f);
        }
        db
    }

    /// Insert a fact; returns `true` if it was new.
    pub fn insert_fact(&mut self, fact: &Fact) -> bool {
        self.insert(fact.pred.clone(), fact.values.clone())
    }

    /// Insert a row under a predicate name; returns `true` if it was new.
    pub fn insert(&mut self, pred: PredName, row: Row) -> bool {
        let arity = row.len();
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(arity))
            .insert(row)
    }

    /// Insert a binary tuple of symbolic constants — the common case for the
    /// paper's workloads (`par`, `up`, `flat`, `down`).
    pub fn insert_pair(&mut self, pred: &str, a: &str, b: &str) -> bool {
        self.insert(PredName::plain(pred), vec![Value::sym(a), Value::sym(b)])
    }

    /// The relation for `pred`, if present.
    pub fn relation(&self, pred: &PredName) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// The relation for `pred`, creating an empty one of the given arity if
    /// absent.
    pub fn relation_mut(&mut self, pred: &PredName, arity: usize) -> &mut Relation {
        self.relations
            .entry(pred.clone())
            .or_insert_with(|| Relation::new(arity))
    }

    /// Mutable access to the relation for `pred`, if present (never
    /// creates).
    pub fn relation_mut_opt(&mut self, pred: &PredName) -> Option<&mut Relation> {
        self.relations.get_mut(pred)
    }

    /// Remove a row from the relation of `pred`; returns `true` if it was
    /// present.  Tombstone-based — see [`Relation::remove_id`] for the
    /// lifecycle.
    pub fn remove(&mut self, pred: &PredName, row: &[Value]) -> bool {
        self.relations
            .get_mut(pred)
            .is_some_and(|rel| rel.remove(row))
    }

    /// Remove a fact; returns `true` if it was present.
    pub fn remove_fact(&mut self, fact: &Fact) -> bool {
        self.remove(&fact.pred, &fact.values)
    }

    /// Adopt a prebuilt relation under `pred`, replacing any existing one
    /// — the restore path of checkpointing, where whole relations are
    /// rebuilt from packed dumps (see
    /// [`Relation::from_packed_rows`]) and handed over wholesale instead
    /// of row by row.
    pub fn insert_relation(&mut self, pred: PredName, relation: Relation) {
        self.relations.insert(pred, relation);
    }

    /// Remove a whole relation, returning it if present.  Used to clean up
    /// scratch relations (e.g. the overdeletion shadow predicates of
    /// incremental maintenance) after a pass over the database.
    pub fn remove_relation(&mut self, pred: &PredName) -> Option<Relation> {
        self.relations.remove(pred)
    }

    /// True iff the database contains the fact.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.relations
            .get(&fact.pred)
            .is_some_and(|r| r.contains(&fact.values))
    }

    /// Number of rows stored for `pred` (0 if absent).
    pub fn count(&self, pred: &PredName) -> usize {
        self.relations.get(pred).map_or(0, Relation::len)
    }

    /// Total number of rows across all relations.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Iterate over `(predicate, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&PredName, &Relation)> + '_ {
        self.relations.iter()
    }

    /// The predicates present in the database.
    pub fn predicates(&self) -> impl Iterator<Item = &PredName> + '_ {
        self.relations.keys()
    }

    /// Iterate over every fact in the database.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations
            .iter()
            .flat_map(|(pred, rel)| rel.iter().map(move |row| Fact::new(pred.clone(), row)))
    }

    /// Merge all relations of `other` into `self`; returns the number of new
    /// rows.
    pub fn merge(&mut self, other: &Database) -> usize {
        let mut added = 0;
        for (pred, rel) in other.iter() {
            for row in rel.iter() {
                if self.insert(pred.clone(), row) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Per-predicate row counts (useful for reporting fact-count tables).
    pub fn counts(&self) -> BTreeMap<PredName, usize> {
        self.relations
            .iter()
            .map(|(p, r)| (p.clone(), r.len()))
            .collect()
    }

    /// Distinct mutable borrows of the relations named by `preds` — the
    /// write-phase counterpart of [`Database::view`].  The engine's
    /// parallel merge phase uses this to hand each worker its own head
    /// relation: the borrows are provably disjoint (each relation is
    /// yielded at most once), so the whole fan-out stays in safe code.
    /// Results are positionally parallel to `preds`.
    ///
    /// # Panics
    ///
    /// Panics if any requested predicate is absent or requested twice.
    pub fn relations_mut_disjoint(&mut self, preds: &[&PredName]) -> Vec<&mut Relation> {
        let mut out: Vec<Option<&mut Relation>> = Vec::new();
        out.resize_with(preds.len(), || None);
        for (name, rel) in self.relations.iter_mut() {
            if let Some(pos) = preds.iter().position(|&p| p == name) {
                out[pos] = Some(rel);
            }
        }
        out.into_iter()
            .enumerate()
            .map(|(i, rel)| {
                rel.unwrap_or_else(|| panic!("relation {} absent (or requested twice)", preds[i]))
            })
            .collect()
    }

    /// A read-only view of the database — the share-safe surface the
    /// engine's parallel evaluation workers resolve relations through.
    /// See [`DatabaseView`].
    pub fn view(&self) -> DatabaseView<'_> {
        DatabaseView { db: self }
    }
}

/// A borrowed read view over a [`Database`].
///
/// The view is `Copy` and hands out relation borrows tied to the
/// *database's* lifetime (not the view's), so a worker can resolve its
/// body relations once and keep probing them for the whole read phase.
/// Nothing behind the view takes a lock: relations have no interior
/// mutability, and the engine guarantees no writer exists while views are
/// live (evaluation and insertion alternate; see
/// [`RelationSnapshot`](crate::relation::RelationSnapshot)).
#[derive(Clone, Copy, Debug)]
pub struct DatabaseView<'a> {
    db: &'a Database,
}

impl<'a> DatabaseView<'a> {
    /// The relation stored for `pred`, if any.
    pub fn relation(&self, pred: &PredName) -> Option<&'a Relation> {
        self.db.relation(pred)
    }

    /// A watermark-pinned snapshot of the relation stored for `pred`.
    pub fn snapshot(&self, pred: &PredName) -> Option<crate::relation::RelationSnapshot<'a>> {
        self.db.relation(pred).map(Relation::snapshot)
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pred, rel) in &self.relations {
            for row in rel.iter() {
                write!(f, "{pred}(")?;
                for (i, v) in row.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                writeln!(f, ").")?;
            }
        }
        Ok(())
    }
}

impl FromIterator<Fact> for Database {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Database::from_facts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::new();
        assert!(db.insert_pair("par", "a", "b"));
        assert!(!db.insert_pair("par", "a", "b"));
        assert!(db.insert_pair("par", "b", "c"));
        assert_eq!(db.count(&PredName::plain("par")), 2);
        assert_eq!(db.total_facts(), 2);
        assert!(db.contains(&Fact::plain("par", vec![Value::sym("a"), Value::sym("b")])));
        assert!(!db.contains(&Fact::plain("par", vec![Value::sym("z"), Value::sym("b")])));
    }

    #[test]
    fn from_facts_roundtrip() {
        let facts = vec![
            Fact::plain("p", vec![Value::int(1)]),
            Fact::plain("q", vec![Value::int(2), Value::int(3)]),
        ];
        let db = Database::from_facts(facts.clone());
        let collected: Vec<Fact> = db.facts().collect();
        assert_eq!(collected.len(), 2);
        for f in &facts {
            assert!(db.contains(f));
        }
    }

    #[test]
    fn merge_and_counts() {
        let mut a = Database::new();
        a.insert_pair("par", "a", "b");
        let mut b = Database::new();
        b.insert_pair("par", "a", "b");
        b.insert_pair("up", "a", "c");
        assert_eq!(a.merge(&b), 1);
        let counts = a.counts();
        assert_eq!(counts[&PredName::plain("par")], 1);
        assert_eq!(counts[&PredName::plain("up")], 1);
    }

    #[test]
    fn display_lists_facts() {
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        assert_eq!(db.to_string(), "par(a, b).\n");
    }

    #[test]
    fn relations_mut_disjoint_yields_positionally() {
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.insert_pair("up", "a", "c");
        db.insert_pair("down", "c", "a");
        let (up, par) = (PredName::plain("up"), PredName::plain("par"));
        let rels = db.relations_mut_disjoint(&[&up, &par]);
        assert_eq!(rels.len(), 2);
        for rel in rels {
            rel.insert(vec![Value::sym("x"), Value::sym("y")]);
        }
        assert_eq!(db.count(&PredName::plain("up")), 2);
        assert_eq!(db.count(&PredName::plain("par")), 2);
        assert_eq!(db.count(&PredName::plain("down")), 1);
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn relations_mut_disjoint_rejects_missing_preds() {
        let mut db = Database::new();
        db.insert_pair("par", "a", "b");
        db.relations_mut_disjoint(&[&PredName::plain("nope")]);
    }

    #[test]
    fn relation_mut_creates() {
        let mut db = Database::new();
        db.relation_mut(&PredName::plain("empty"), 3);
        assert_eq!(db.count(&PredName::plain("empty")), 0);
        assert!(db.relation(&PredName::plain("empty")).is_some());
    }
}
