//! A fast, dependency-free hasher for in-memory index keys.
//!
//! The storage layer hashes every inserted row once for duplicate
//! elimination and once per maintained index; with the std `SipHash`
//! default that hashing dominates insert cost.  This is the FxHash
//! algorithm used by rustc (a multiply-rotate word hash): not
//! collision-resistant against adversaries, which is fine for rows of
//! interned symbols and small integers, and several times faster than
//! SipHash on short keys.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state.
#[derive(Clone, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&vec![1, 2, 3]), hash_of(&vec![1, 2, 3]));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn different_values_hash_differently() {
        // Not guaranteed in general, but these must differ for a usable hash.
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&vec![1, 2]), hash_of(&vec![2, 1]));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn vec_and_slice_hash_agree() {
        // Relation::contains hashes a borrowed slice against keys inserted
        // as owned Vecs; std's Borrow contract requires these to agree.
        let v = vec![3u64, 1, 4, 1, 5];
        assert_eq!(hash_of(&v), hash_of(&v.as_slice()));
    }
}
