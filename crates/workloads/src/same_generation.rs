//! `up` / `flat` / `down` structures for the (nonlinear and nested)
//! same-generation programs.

use magic_storage::Database;

/// Configuration of the layered same-generation workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SgConfig {
    /// Number of `up`/`down` levels above the base level.
    pub depth: usize,
    /// Number of nodes per level.
    pub width: usize,
    /// Whether `flat` edges are generated on every level (true) or only on
    /// the top level (false).
    pub flat_everywhere: bool,
}

impl Default for SgConfig {
    fn default() -> Self {
        SgConfig {
            depth: 3,
            width: 8,
            flat_everywhere: true,
        }
    }
}

/// The name of the node at `(level, column)`.
pub fn grid_node(level: usize, column: usize) -> String {
    format!("l{level}c{column}")
}

/// A layered grid:
///
/// * `up(l{i}c{j}, l{i+1}c{j})` — each node points up to the node above it;
/// * `down(l{i+1}c{j}, l{i}c{j})` — and back down;
/// * `flat(l{i}c{j}, l{i}c{j±1})` — adjacent columns of a level are "flat"
///   neighbours (on the top level only, unless `flat_everywhere`).
///
/// Two base-level nodes are in the same generation whenever they are
/// connected through some number of up-moves, a flat move and the matching
/// down-moves — exactly the shape of the nonlinear `sg` rule.
pub fn same_generation_grid(config: SgConfig) -> Database {
    let mut db = Database::new();
    for level in 0..config.depth {
        for col in 0..config.width {
            db.insert_pair("up", &grid_node(level, col), &grid_node(level + 1, col));
            db.insert_pair("down", &grid_node(level + 1, col), &grid_node(level, col));
        }
    }
    for level in 0..=config.depth {
        if !config.flat_everywhere && level != config.depth {
            continue;
        }
        for col in 0..config.width.saturating_sub(1) {
            db.insert_pair("flat", &grid_node(level, col), &grid_node(level, col + 1));
            db.insert_pair("flat", &grid_node(level, col + 1), &grid_node(level, col));
        }
    }
    db
}

/// The extra `b1`/`b2` relations used by the *nested* same-generation
/// program of the Appendix (problem 3): `b1` mirrors `flat` on the base
/// level and `b2` is the identity on base-level nodes, so the nested `p`
/// relation is non-trivial but finite.
pub fn nested_sg_extras(config: SgConfig, db: &mut Database) {
    for col in 0..config.width.saturating_sub(1) {
        db.insert_pair("b1", &grid_node(0, col), &grid_node(0, col + 1));
    }
    for col in 0..config.width {
        db.insert_pair("b2", &grid_node(0, col), &grid_node(0, col));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::PredName;

    #[test]
    fn grid_sizes() {
        let cfg = SgConfig {
            depth: 2,
            width: 4,
            flat_everywhere: true,
        };
        let db = same_generation_grid(cfg);
        assert_eq!(db.count(&PredName::plain("up")), 8);
        assert_eq!(db.count(&PredName::plain("down")), 8);
        // 3 levels × 3 adjacent pairs × 2 directions.
        assert_eq!(db.count(&PredName::plain("flat")), 18);
    }

    #[test]
    fn flat_only_on_top() {
        let cfg = SgConfig {
            depth: 2,
            width: 4,
            flat_everywhere: false,
        };
        let db = same_generation_grid(cfg);
        assert_eq!(db.count(&PredName::plain("flat")), 6);
    }

    #[test]
    fn nested_extras() {
        let cfg = SgConfig::default();
        let mut db = same_generation_grid(cfg);
        nested_sg_extras(cfg, &mut db);
        assert_eq!(db.count(&PredName::plain("b1")), cfg.width - 1);
        assert_eq!(db.count(&PredName::plain("b2")), cfg.width);
    }

    #[test]
    fn same_generation_answers_exist() {
        // End-to-end sanity: the nonlinear sg program over a small grid has
        // answers for a base-level query.
        use magic_datalog::{parse_program, parse_query};
        use magic_engine::{answers::query_answers, Evaluator};
        let program = parse_program(
            "sg(X, Y) :- flat(X, Y).
             sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
        )
        .unwrap();
        let db = same_generation_grid(SgConfig {
            depth: 2,
            width: 4,
            flat_everywhere: true,
        });
        let result = Evaluator::new(program).run(&db).unwrap();
        let q = parse_query("sg(l0c0, Y)").unwrap();
        assert!(!query_answers(&result.database, &q).is_empty());
    }
}
