//! Stratified-negation and aggregate scenario families: the win/lose
//! game, bill-of-materials rollups, and shortest paths via `min` — the
//! workloads the stratified evaluator unlocks, each paired with a plain
//! Rust oracle computing the expected perfect model so benchmarks and
//! tests can assert exact answers, not just "it ran".

use crate::rng::SplitMix64;
use magic_datalog::{parse_program, Fact, PredName, Program, Value};
use magic_storage::Database;
use std::collections::{BTreeMap, BTreeSet};

/// The position name with the given index (`p0`, `p1`, ...).
pub fn position(i: usize) -> String {
    format!("p{i}")
}

/// The stratified win/lose game: a position is *lost* when it has no
/// moves at all, and *won* when some move reaches a lost position.  The
/// `not has_move` complement sits in a strictly lower stratum than
/// `lose`, which sits strictly below `win` — three strata, no cycle
/// through the negation.
pub fn win_lose() -> Program {
    parse_program(
        "has_move(X) :- move(X, Y).
         lose(X) :- position(X), not has_move(X).
         win(X) :- move(X, Y), lose(Y).",
    )
    .expect("win/lose program parses")
}

/// The classic *unstratifiable* win/lose formulation — `win` negated
/// inside its own recursive rule.  Exists to be refused: the planner must
/// reject it with `Unstratifiable` before any evaluation.
pub fn unstratifiable_win_lose() -> Program {
    parse_program("win(X) :- move(X, Y), not win(Y).").expect("recursive win/lose parses")
}

/// A random game graph: `n` positions, roughly `moves` directed moves
/// between distinct positions (self-moves excluded so losing positions
/// exist), every position declared under `position/1`.  Deterministic for
/// a given `seed`.
pub fn game_graph(n: usize, moves: usize, seed: u64) -> Database {
    let mut db = Database::new();
    let mut rng = SplitMix64::seed_from_u64(seed);
    for i in 0..n {
        db.insert(PredName::plain("position"), vec![Value::sym(&position(i))]);
    }
    if n < 2 {
        return db;
    }
    for _ in 0..moves {
        let a = rng.random_range(0..n);
        let mut b = rng.random_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        db.insert_pair("move", &position(a), &position(b));
    }
    db
}

/// The perfect model of [`win_lose`] over `db`, computed directly in
/// Rust: the expected `win` and `lose` relations as fact sets.
pub fn win_lose_oracle(db: &Database) -> BTreeSet<Fact> {
    let positions: BTreeSet<String> = rows_of(db, "position")
        .into_iter()
        .map(|row| row[0].clone())
        .collect();
    let moves: Vec<(String, String)> = rows_of(db, "move")
        .into_iter()
        .map(|row| (row[0].clone(), row[1].clone()))
        .collect();
    let movers: BTreeSet<&String> = moves.iter().map(|(a, _)| a).collect();
    let lost: BTreeSet<&String> = positions.iter().filter(|p| !movers.contains(p)).collect();
    let mut expected = BTreeSet::new();
    for p in &lost {
        expected.insert(Fact::plain("lose", vec![Value::sym(p)]));
    }
    for (a, b) in &moves {
        if lost.contains(b) {
            expected.insert(Fact::plain("win", vec![Value::sym(a)]));
        }
    }
    expected
}

/// The bill-of-materials rollup program: per-assembly totals, extremes,
/// and component counts, each an aggregate over the (non-recursive)
/// component-cost stratum.  Aggregation is over *sets*: duplicate
/// `(group, value)` pairs contribute once, which is why
/// [`bom_database`] assigns every part a distinct cost.
pub fn bill_of_materials() -> Program {
    parse_program(
        "cost(A, C) :- assembly(A, P), part_cost(P, C).
         total(A, sum<C>) :- cost(A, C).
         cheapest(A, min<C>) :- cost(A, C).
         priciest(A, max<C>) :- cost(A, C).
         breadth(A, count<P>) :- assembly(A, P).",
    )
    .expect("bill-of-materials program parses")
}

/// A random bill of materials: `assemblies` assemblies each drawing
/// between 1 and `max_parts` parts from a shared pool, every part priced
/// with a *distinct* integer cost (so set-semantics sums equal bag
/// sums).  Deterministic for a given `seed`.
pub fn bom_database(assemblies: usize, max_parts: usize, seed: u64) -> Database {
    let mut db = Database::new();
    let mut rng = SplitMix64::seed_from_u64(seed);
    let pool = (assemblies * max_parts).max(1);
    for p in 0..pool {
        // Distinct, seed-shuffled-looking costs: a fixed stride over a
        // large base keeps them unique without bookkeeping.
        let cost = 10 + 7 * p as i64;
        db.insert(
            PredName::plain("part_cost"),
            vec![Value::sym(&format!("part{p}")), Value::int(cost)],
        );
    }
    for a in 0..assemblies {
        let parts = 1 + rng.random_range(0..max_parts);
        let mut chosen = BTreeSet::new();
        while chosen.len() < parts {
            chosen.insert(rng.random_range(0..pool));
        }
        for p in chosen {
            db.insert_pair("assembly", &format!("asm{a}"), &format!("part{p}"));
        }
    }
    db
}

/// The expected aggregate relations of [`bill_of_materials`] over `db`,
/// computed directly in Rust (distinct `(assembly, cost)` pairs, per the
/// engine's set semantics).
pub fn bom_oracle(db: &Database) -> BTreeSet<Fact> {
    let prices: BTreeMap<String, i64> = rows_of(db, "part_cost")
        .into_iter()
        .map(|row| {
            let cost: i64 = row[1].parse().expect("integer cost");
            (row[0].clone(), cost)
        })
        .collect();
    let mut costs: BTreeMap<String, BTreeSet<i64>> = BTreeMap::new();
    let mut parts: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for row in rows_of(db, "assembly") {
        let price = prices[&row[1]];
        costs.entry(row[0].clone()).or_default().insert(price);
        parts
            .entry(row[0].clone())
            .or_default()
            .insert(row[1].clone());
    }
    let mut expected = BTreeSet::new();
    for (asm, cs) in &costs {
        for &c in cs {
            expected.insert(fact_sym_int("cost", asm, c));
        }
        expected.insert(fact_sym_int("total", asm, cs.iter().sum()));
        expected.insert(fact_sym_int("cheapest", asm, *cs.iter().next().unwrap()));
        expected.insert(fact_sym_int("priciest", asm, *cs.iter().last().unwrap()));
    }
    for (asm, ps) in &parts {
        expected.insert(fact_sym_int("breadth", asm, ps.len() as i64));
    }
    expected
}

/// Shortest paths (in hops) via `min`: `dist(X, Y, I)` holds when `Y` is
/// reachable from `X` in exactly `I` hops with `I` within the data's
/// `succ` bound, and `shortest` folds the minimum per pair at the
/// stratum boundary.  Hop counts are threaded through the base `succ`
/// relation — the engine has no arithmetic, so the counter *is* data,
/// and the `succ` bound is what keeps `dist` finite on cyclic graphs.
pub fn shortest_paths() -> Program {
    parse_program(
        "dist(X, Y, I) :- edge(X, Y), one(I).
         dist(X, Z, J) :- dist(X, Y, I), edge(Y, Z), succ(I, J).
         shortest(X, Y, min<I>) :- dist(X, Y, I).",
    )
    .expect("shortest-paths program parses")
}

/// A random directed graph of `n` nodes (`p0`, ...) and roughly `edges`
/// edges (cycles allowed), plus the hop-counter scaffolding `one(1)` and
/// `succ(i, i+1)` up to `bound` — the maximum path length `dist`
/// explores.  Deterministic for a given `seed`.
pub fn hop_graph(n: usize, edges: usize, bound: usize, seed: u64) -> Database {
    let mut db = Database::new();
    let mut rng = SplitMix64::seed_from_u64(seed);
    db.insert(PredName::plain("one"), vec![Value::int(1)]);
    for i in 1..bound {
        db.insert(
            PredName::plain("succ"),
            vec![Value::int(i as i64), Value::int(i as i64 + 1)],
        );
    }
    if n < 2 {
        return db;
    }
    for _ in 0..edges {
        let a = rng.random_range(0..n);
        let mut b = rng.random_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        db.insert_pair("edge", &position(a), &position(b));
    }
    db
}

/// The expected `shortest` relation of [`shortest_paths`] over `db`:
/// breadth-first hop counts per ordered pair, capped at the database's
/// `succ` bound.  (Only `shortest` is returned — `dist` enumerates every
/// hop count up to the bound and is an implementation detail.)
pub fn shortest_oracle(db: &Database) -> BTreeSet<Fact> {
    let bound = rows_of(db, "succ").len() + 1;
    let mut adjacency: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    for row in rows_of(db, "edge") {
        nodes.insert(row[0].clone());
        nodes.insert(row[1].clone());
        adjacency
            .entry(row[0].clone())
            .or_default()
            .insert(row[1].clone());
    }
    let mut expected = BTreeSet::new();
    for start in &nodes {
        // BFS from `start`, depth-capped at the succ bound.
        let mut dist: BTreeMap<&String, usize> = BTreeMap::new();
        let mut frontier = vec![start];
        let mut depth = 0;
        while !frontier.is_empty() && depth < bound {
            depth += 1;
            let mut next = Vec::new();
            for node in frontier {
                for to in adjacency.get(node).into_iter().flatten() {
                    // The start is not pre-seeded: it gets a distance only
                    // via a real cycle, matching `dist`'s path semantics.
                    if !dist.contains_key(to) {
                        dist.insert(to, depth);
                        next.push(to);
                    }
                }
            }
            frontier = next;
        }
        for (to, d) in dist {
            expected.insert(Fact::plain(
                "shortest",
                vec![Value::sym(start), Value::sym(to), Value::int(d as i64)],
            ));
        }
    }
    expected
}

/// `pred(sym, int)` as a fact.
fn fact_sym_int(pred: &str, sym: &str, n: i64) -> Fact {
    Fact::plain(pred, vec![Value::sym(sym), Value::int(n)])
}

/// The rows of `pred` in `db`, stringified per position (integers print
/// bare, e.g. `"17"`).
fn rows_of(db: &Database, pred: &str) -> Vec<Vec<String>> {
    db.relation(&PredName::plain(pred))
        .map(|rel| {
            rel.iter()
                .map(|row| row.iter().map(|v| v.to_string()).collect())
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_engine::Evaluator;

    fn derived_facts(program: &Program, db: &Database, preds: &[&str]) -> BTreeSet<Fact> {
        let result = Evaluator::new(program.clone()).run(db).unwrap();
        let wanted: BTreeSet<PredName> = preds.iter().map(|p| PredName::plain(p)).collect();
        result
            .database
            .facts()
            .filter(|f| wanted.contains(&f.pred))
            .collect()
    }

    #[test]
    fn win_lose_engine_matches_oracle() {
        let db = game_graph(40, 90, 11);
        let engine = derived_facts(&win_lose(), &db, &["win", "lose"]);
        assert_eq!(engine, win_lose_oracle(&db));
        // The scenario is non-degenerate: both outcomes occur.
        assert!(engine.iter().any(|f| f.pred == PredName::plain("win")));
        assert!(engine.iter().any(|f| f.pred == PredName::plain("lose")));
    }

    #[test]
    fn unstratifiable_variant_is_detected() {
        let schedule = magic_datalog::Schedule::build(&unstratifiable_win_lose());
        assert!(!schedule.is_stratified());
    }

    #[test]
    fn bom_engine_matches_oracle() {
        let db = bom_database(6, 5, 23);
        let engine = derived_facts(
            &bill_of_materials(),
            &db,
            &["cost", "total", "cheapest", "priciest", "breadth"],
        );
        assert_eq!(engine, bom_oracle(&db));
    }

    #[test]
    fn shortest_paths_engine_matches_oracle() {
        let db = hop_graph(16, 40, 8, 5);
        let engine = derived_facts(&shortest_paths(), &db, &["shortest"]);
        assert_eq!(engine, shortest_oracle(&db));
        assert!(!engine.is_empty());
    }

    #[test]
    fn shortest_paths_terminate_on_cycles() {
        // A pure cycle: dist saturates at the succ bound instead of
        // diverging, and each pair's shortest hop count is exact.
        let mut db = Database::new();
        db.insert(PredName::plain("one"), vec![Value::int(1)]);
        for i in 1..6 {
            db.insert(
                PredName::plain("succ"),
                vec![Value::int(i), Value::int(i + 1)],
            );
        }
        for i in 0..4 {
            db.insert_pair("edge", &position(i), &position((i + 1) % 4));
        }
        let engine = derived_facts(&shortest_paths(), &db, &["shortest"]);
        assert_eq!(engine, shortest_oracle(&db));
        // Every node reaches itself around the cycle in exactly 4 hops.
        assert!(engine.contains(&Fact::plain(
            "shortest",
            vec![Value::sym("p0"), Value::sym("p0"), Value::int(4)],
        )));
    }
}
