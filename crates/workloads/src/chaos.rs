//! Chaos scenario generation: seeded fault schedules for the serving
//! stack's fault-injection seam (`magic_durable::faults` — a dev
//! dependency here, so no intra-doc link).
//!
//! A *chaos scenario* pairs a deterministic fault-spec string (the
//! `MAGIC_FAULTS` grammar: `<site>=<from>[x<count>][:<millis>]`, comma
//! separated) with a deterministic update workload seed, so one `u64`
//! reproduces an entire run — which syncs fail, which frames tear,
//! which connections stall, and which facts were in flight when they
//! did.  The chaos test suite (`crates/serve/tests/chaos.rs`) and the
//! CI fault matrix both draw their schedules from here instead of
//! hand-picking them, the same philosophy as the rest of this crate:
//! generated, seeded, reproducible.
//!
//! This module emits *strings*, not parsed plans, so the crate stays
//! free of a `magic-durable` dependency; the durable crate's parser is
//! the single authority on the grammar (the dev-dependency test below
//! round-trips every generated spec through it).

use crate::rng::SplitMix64;

/// One reproducible chaos run: a fault schedule plus the workload that
/// drives the server through it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosScenario {
    /// A stable human-readable label (`chaos-<seed>-<n>`), used as the
    /// store-directory suffix and in failure reports.
    pub name: String,
    /// The fault schedule in `MAGIC_FAULTS` grammar, e.g.
    /// `"wal-fsync-fail=3x2,conn-drop=5"`.
    pub fault_spec: String,
    /// Seed for the update stream driven at the server during the run.
    pub workload_seed: u64,
    /// How many update operations the run should drive.
    pub ops: usize,
}

/// The fault sites a generated schedule may draw from, with the
/// parameter shapes that make each meaningful.  Stall sites carry a
/// bounded delay so a generated schedule can slow a run down but never
/// wedge it.
const SITES: &[SiteSpec] = &[
    SiteSpec {
        site: "wal-fsync-fail",
        timed: false,
    },
    SiteSpec {
        site: "wal-torn",
        timed: false,
    },
    SiteSpec {
        site: "ckpt-rename-fail",
        timed: false,
    },
    SiteSpec {
        site: "wal-stall",
        timed: true,
    },
    SiteSpec {
        site: "conn-stall",
        timed: true,
    },
    SiteSpec {
        site: "conn-drop",
        timed: false,
    },
];

struct SiteSpec {
    site: &'static str,
    timed: bool,
}

/// Draw one fault rule (`site=from[xcount][:millis]`) from `rng`.
fn chaos_rule(rng: &mut SplitMix64) -> String {
    let spec = &SITES[rng.random_range(0..SITES.len())];
    // Strike early (the workloads are short), occasionally repeat.
    // The bootstrap checkpoint (rename #1, performed before the
    // listener is live) is exempt: failing it would abort startup
    // rather than exercise degraded mode, so rename schedules start
    // at the second occurrence.
    let from = if spec.site == "ckpt-rename-fail" {
        rng.random_range(2..12)
    } else {
        rng.random_range(1..12)
    };
    let count = rng.random_range(1..4);
    let mut rule = format!("{}={from}", spec.site);
    if count > 1 {
        rule.push_str(&format!("x{count}"));
    }
    if spec.timed {
        // 10..160ms: long enough to overlap in-flight work, short
        // enough that a test suite full of scenarios stays quick.
        let millis = 10 + rng.random_range(0..150);
        rule.push_str(&format!(":{millis}"));
    }
    rule
}

/// A full seeded fault-spec string: one to three rules over *distinct*
/// sites, comma separated, deterministic in `rng`'s state.
pub fn chaos_fault_spec(rng: &mut SplitMix64) -> String {
    let rules = rng.random_range(1..4);
    let mut spec_parts: Vec<String> = Vec::new();
    while spec_parts.len() < rules {
        let rule = chaos_rule(rng);
        let site = rule.split('=').next().expect("rule has a site").to_string();
        if spec_parts.iter().any(|r| r.starts_with(&site)) {
            // Same site drawn twice: skip rather than emit a duplicate
            // (the parser would accept it, but two schedules on one
            // counter make the scenario harder to reason about).
            continue;
        }
        spec_parts.push(rule);
    }
    spec_parts.join(",")
}

/// `count` reproducible scenarios derived from `seed`.  The same
/// `(seed, count)` always yields the same schedules, and scenario `i`
/// of `chaos_scenarios(s, n)` equals scenario `i` of
/// `chaos_scenarios(s, m)` for `i < min(n, m)` — so a CI matrix can
/// grow without invalidating earlier cells.
pub fn chaos_scenarios(seed: u64, count: usize) -> Vec<ChaosScenario> {
    (0..count)
        .map(|i| {
            // One generator per scenario (seeded by mixing `seed` and
            // the index through SplitMix64 itself) keeps scenarios
            // prefix-stable: later scenarios never perturb earlier
            // ones however many rules each happens to draw.
            let mut mix = SplitMix64::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37));
            let mut rng = SplitMix64::seed_from_u64(mix.next_u64());
            let fault_spec = chaos_fault_spec(&mut rng);
            ChaosScenario {
                name: format!("chaos-{seed}-{i}"),
                fault_spec,
                workload_seed: rng.next_u64(),
                ops: 24 + rng.random_range(0..40),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_and_prefix_stable() {
        let a = chaos_scenarios(7, 6);
        let b = chaos_scenarios(7, 6);
        assert_eq!(a, b);
        let shorter = chaos_scenarios(7, 3);
        assert_eq!(&a[..3], &shorter[..]);
        // Different seeds give different schedules somewhere.
        let c = chaos_scenarios(8, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn every_generated_spec_parses_as_a_fault_plan() {
        // The durable crate's parser is the grammar authority; every
        // spec this module can emit must round-trip through it.
        for scenario in chaos_scenarios(0xC4A05, 64) {
            let plan = magic_durable::FaultPlan::parse(&scenario.fault_spec)
                .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
            assert!(!plan.is_empty(), "{}: empty plan", scenario.name);
        }
    }

    #[test]
    fn specs_bound_their_stalls() {
        // No generated stall may exceed the documented 160ms bound —
        // the property that keeps a chaos suite fast.
        for scenario in chaos_scenarios(99, 64) {
            for rule in scenario.fault_spec.split(',') {
                if let Some((_, millis)) = rule.split_once(':') {
                    let millis: u64 = millis.parse().expect("stall millis parse");
                    assert!((10..160).contains(&millis), "stall out of range: {rule}");
                }
            }
        }
    }
}
