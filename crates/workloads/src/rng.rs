//! A minimal, dependency-free deterministic PRNG.
//!
//! The build environment has no access to crates.io, so the workloads (and
//! the randomized test suites) use this SplitMix64 generator instead of
//! `rand`.  SplitMix64 (Steele, Lea & Flood, "Fast Splittable Pseudorandom
//! Number Generators", OOPSLA 2014) passes BigCrush, needs eight lines of
//! code, and — critically for reproducible workloads — is fully determined
//! by its seed on every platform.

/// A SplitMix64 pseudorandom number generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed `usize` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping is fine here: span is tiny
        // relative to 2^64, so the bias is unobservable for test workloads.
        range.start + ((self.next_u64() as u128 * span as u128) >> 64) as usize
    }

    /// A uniformly distributed `i64` in `lo..hi`.
    pub fn random_range_i64(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        // wrapping_sub: the span of a range wider than i64::MAX still fits
        // in u64, but the plain subtraction would overflow.
        let span = range.end.wrapping_sub(range.start) as u64;
        let offset = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start.wrapping_add(offset as i64)
    }

    /// A bernoulli draw with probability `num / den`.
    pub fn random_ratio(&mut self, num: u32, den: u32) -> bool {
        debug_assert!(num <= den && den > 0);
        self.random_range(0..den as usize) < num as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range_i64(-5..5);
            assert!((-5..5).contains(&w));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
