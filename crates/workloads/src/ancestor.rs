//! Parenthood relations for the ancestor programs: chains, balanced trees,
//! random DAGs and cycles.

use crate::rng::SplitMix64;
use magic_storage::Database;

/// The name of the node with the given index (`n0`, `n1`, ...).
pub fn node(i: usize) -> String {
    format!("n{i}")
}

/// A chain `par(n0, n1), par(n1, n2), ..., par(n_{n-1}, n_n)`.
///
/// The full `anc` relation over a chain of `n` edges has `n(n+1)/2` tuples,
/// while the answers to `anc(n0, Y)?` number only `n` — the gap the
/// magic-sets rewrite exploits (Section 1).
pub fn chain(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert_pair("par", &node(i), &node(i + 1));
    }
    db
}

/// A complete binary tree of the given depth: node `i` is the parent of
/// nodes `2i+1` and `2i+2`.  Depth `d` yields `2^(d+1) - 1` nodes.
pub fn binary_tree(depth: usize) -> Database {
    let mut db = Database::new();
    let nodes = (1usize << (depth + 1)) - 1;
    let internal = (1usize << depth) - 1;
    for i in 0..internal {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < nodes {
                db.insert_pair("par", &node(i), &node(child));
            }
        }
    }
    db
}

/// A random DAG over `n` nodes with roughly `edges` edges, all oriented from
/// lower-numbered to higher-numbered nodes (hence acyclic).  Deterministic
/// for a given `seed`.
pub fn random_dag(n: usize, edges: usize, seed: u64) -> Database {
    let mut db = Database::new();
    let mut rng = SplitMix64::seed_from_u64(seed);
    if n < 2 {
        return db;
    }
    for _ in 0..edges {
        let a = rng.random_range(0..n - 1);
        let b = rng.random_range(a + 1..n);
        db.insert_pair("par", &node(a), &node(b));
    }
    db
}

/// A directed cycle over `n` nodes (`par(n0, n1), ..., par(n_{n-1}, n0)`).
/// Magic sets terminate on cyclic data; the counting methods do not
/// (Section 10).
pub fn cycle(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert_pair("par", &node(i), &node((i + 1) % n));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_datalog::PredName;

    #[test]
    fn chain_sizes() {
        assert_eq!(chain(10).count(&PredName::plain("par")), 10);
        assert_eq!(chain(0).total_facts(), 0);
    }

    #[test]
    fn binary_tree_sizes() {
        // Depth 3: 15 nodes, 14 edges.
        assert_eq!(binary_tree(3).count(&PredName::plain("par")), 14);
        assert_eq!(binary_tree(0).total_facts(), 0);
    }

    #[test]
    fn random_dag_is_deterministic_and_acyclic() {
        let a = random_dag(50, 200, 7);
        let b = random_dag(50, 200, 7);
        assert_eq!(a, b);
        // Acyclic by construction: all edges go from lower to higher ids.
        for row in a.relation(&PredName::plain("par")).unwrap().iter() {
            let from: usize = row[0].to_string()[1..].parse().unwrap();
            let to: usize = row[1].to_string()[1..].parse().unwrap();
            assert!(from < to);
        }
        let c = random_dag(50, 200, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn cycle_wraps_around() {
        let db = cycle(5);
        assert_eq!(db.count(&PredName::plain("par")), 5);
        assert!(db.contains(&magic_datalog::Fact::plain(
            "par",
            vec!["n4".into(), "n0".into()]
        )));
    }
}
