//! Production-shaped load generation: zipfian key popularity over the
//! serve layer's request grammar, in both **closed-loop** (a fixed
//! number of clients, each issuing its next request the moment the
//! previous one completes) and **open-loop** (requests arrive on a
//! schedule regardless of completion — the shape that actually reveals
//! queueing collapse) forms.
//!
//! Social traffic is skewed: a few hot keys absorb most of the reads
//! while a long tail is touched rarely.  [`Zipf`] models that with the
//! classic rank-frequency law `P(rank i) ∝ 1 / (i+1)^s` — `s = 0` is
//! uniform, `s ≈ 1` is web-like, larger is hotter.  Everything here is
//! seeded and deterministic ([`SplitMix64`] underneath): the same
//! `(config, seed)` reproduces the same request stream byte for byte,
//! and any prefix of a longer stream equals the shorter stream (the
//! property `prefix_stability` locks in), so a benchmark and its
//! shrunken repro draw identical traffic.

use crate::requests::ServeRequest;
use crate::rng::SplitMix64;
use crate::updates::UpdateOp;
use magic_datalog::{Fact, Value};
use std::time::Duration;

/// A zipfian sampler over ranks `0..n`: `P(i) ∝ 1 / (i+1)^exponent`.
///
/// Construction precomputes the cumulative distribution once (O(n));
/// each [`Zipf::sample`] is then one uniform draw plus a binary search
/// (O(log n)) — cheap enough to sit inside a load generator's hot
/// loop at millions of keys.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probabilities; `cdf[i]` = P(rank <= i), last entry 1.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n >= 1` ranks with the given skew exponent
    /// (`0.0` = uniform; typical web traffic is near `1.0`).
    pub fn new(n: usize, exponent: f64) -> Zipf {
        assert!(n >= 1, "a zipfian needs at least one rank");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for p in &mut cdf {
            *p /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank in `0..ranks()`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = unit(rng);
        // First rank whose cumulative probability exceeds the draw.
        self.cdf
            .partition_point(|&p| p <= u)
            .min(self.cdf.len() - 1)
    }
}

/// A uniform draw in `[0, 1)` (53 mantissa bits of a `SplitMix64` word).
fn unit(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Shape of a [`LoadGen`] request stream.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Number of distinct query keys (chain nodes `n0..`): queries ask
    /// `anc(n<rank>, Y)` with zipfian rank popularity.
    pub query_keys: usize,
    /// Number of distinct update endpoints (side universe `z0..`):
    /// updates insert/retract `par(z<a>, z<b>)` edges with zipfian
    /// endpoint popularity, modelling a skewed follower graph.
    pub update_keys: usize,
    /// Zipf exponent shared by both key spaces.
    pub exponent: f64,
    /// Percent of requests that are queries (the rest are updates).
    pub query_pct: u32,
    /// Of the updates, percent that are inserts (the rest retract).
    pub insert_pct: u32,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            query_keys: 64,
            update_keys: 256,
            exponent: 1.0,
            query_pct: 90,
            insert_pct: 70,
        }
    }
}

/// The closed-loop generator: an infinite, seeded, prefix-stable
/// iterator of [`ServeRequest`]s drawn from a [`LoadConfig`].  Closed
/// loop means the *consumer* paces it — a client pulls the next
/// request when the previous response lands.
#[derive(Clone, Debug)]
pub struct LoadGen {
    config: LoadConfig,
    query_zipf: Zipf,
    update_zipf: Zipf,
    rng: SplitMix64,
}

impl LoadGen {
    /// A generator for `config` seeded with `seed` (same seed, same
    /// stream).
    pub fn new(config: LoadConfig, seed: u64) -> LoadGen {
        let query_zipf = Zipf::new(config.query_keys.max(1), config.exponent);
        let update_zipf = Zipf::new(config.update_keys.max(1), config.exponent);
        LoadGen {
            config,
            query_zipf,
            update_zipf,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }
}

impl Iterator for LoadGen {
    type Item = ServeRequest;

    fn next(&mut self) -> Option<ServeRequest> {
        if self.rng.random_ratio(self.config.query_pct, 100) {
            let rank = self.query_zipf.sample(&mut self.rng);
            return Some(ServeRequest::Query(format!("anc(n{rank}, Y)")));
        }
        let a = self.update_zipf.sample(&mut self.rng);
        let b = self.update_zipf.sample(&mut self.rng);
        let fact = Fact::plain(
            "par",
            vec![Value::sym(&format!("z{a}")), Value::sym(&format!("z{b}"))],
        );
        Some(if self.rng.random_ratio(self.config.insert_pct, 100) {
            ServeRequest::Update(UpdateOp::Insert(fact))
        } else {
            ServeRequest::Update(UpdateOp::Retract(fact))
        })
    }
}

/// Open-loop arrival gaps: an infinite, seeded iterator of
/// exponentially distributed inter-arrival times with mean
/// `1 / rate_hz` (a Poisson arrival process).  An open-loop driver
/// sleeps each gap and fires the next request *whether or not* earlier
/// ones completed; latency then includes the queueing delay a
/// closed-loop harness hides.
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    mean: Duration,
    rng: SplitMix64,
}

impl PoissonArrivals {
    /// Arrival gaps averaging `rate_hz` events per second.
    pub fn new(rate_hz: f64, seed: u64) -> PoissonArrivals {
        assert!(rate_hz > 0.0, "arrival rate must be positive");
        PoissonArrivals {
            mean: Duration::from_secs_f64(1.0 / rate_hz),
            rng: SplitMix64::seed_from_u64(seed),
        }
    }
}

impl Iterator for PoissonArrivals {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        // Inverse-CDF of the exponential; clamp the draw away from 0
        // so ln never sees it.
        let u = unit(&mut self.rng).max(f64::MIN_POSITIVE);
        Some(self.mean.mul_f64(-u.ln()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_stability() {
        // The first 1_000 requests of a long draw equal a fresh
        // generator's first 1_000: prefixes are stable, so a shrunken
        // benchmark repro sees byte-identical traffic.
        let config = LoadConfig::default();
        let long: Vec<ServeRequest> = LoadGen::new(config.clone(), 0xFEED).take(10_000).collect();
        let short: Vec<ServeRequest> = LoadGen::new(config, 0xFEED).take(1_000).collect();
        assert_eq!(&long[..1_000], &short[..]);
        // And a different seed draws different traffic.
        let other: Vec<ServeRequest> = LoadGen::new(LoadConfig::default(), 0xBEEF)
            .take(1_000)
            .collect();
        assert_ne!(short, other);
    }

    #[test]
    fn zipf_skew_matches_the_configured_exponent() {
        // Empirical rank frequencies over a large draw must match the
        // law P(i) ∝ 1/(i+1)^s within tolerance.  With s = 1 the
        // hottest rank is exactly twice the second and four times the
        // fourth; check those ratios and the absolute probability of
        // rank 0 against the analytic harmonic normalizer.
        let n = 64;
        let s = 1.0;
        let zipf = Zipf::new(n, s);
        let mut rng = SplitMix64::seed_from_u64(0x51AB);
        let draws = 400_000usize;
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let harmonic: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
        let expected0 = 1.0 / harmonic;
        let observed0 = counts[0] as f64 / draws as f64;
        assert!(
            (observed0 - expected0).abs() / expected0 < 0.05,
            "rank-0 probability {observed0:.4} vs analytic {expected0:.4}"
        );
        let r01 = counts[0] as f64 / counts[1] as f64;
        assert!((r01 - 2.0).abs() < 0.2, "rank0/rank1 = {r01:.3}, want ~2");
        let r03 = counts[0] as f64 / counts[3] as f64;
        assert!((r03 - 4.0).abs() < 0.5, "rank0/rank3 = {r03:.3}, want ~4");
        // A flat exponent really is uniform-ish: no rank above twice
        // the uniform share.
        let flat = Zipf::new(n, 0.0);
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[flat.sample(&mut rng)] += 1;
        }
        let cap = (2 * draws / n) as u64;
        assert!(counts.iter().all(|&c| c < cap), "uniform draw is skewed");
    }

    #[test]
    fn poisson_gaps_average_the_requested_rate() {
        let gaps: Vec<Duration> = PoissonArrivals::new(1_000.0, 7).take(50_000).collect();
        let total: Duration = gaps.iter().sum();
        let mean_ms = total.as_secs_f64() * 1_000.0 / gaps.len() as f64;
        // 1 kHz => 1ms mean gap, within 5%.
        assert!(
            (mean_ms - 1.0).abs() < 0.05,
            "mean gap {mean_ms:.4}ms, want ~1ms"
        );
        // Deterministic: same seed, same schedule.
        let again: Vec<Duration> = PoissonArrivals::new(1_000.0, 7).take(100).collect();
        assert_eq!(&gaps[..100], &again[..]);
    }
}
