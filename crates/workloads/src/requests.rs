//! Request-stream generators for the serving layer: deterministic mixes
//! of queries and base-fact updates, the load shape `magic-serve`
//! benchmarks and smoke tests replay against a running server.
//!
//! Queries are emitted as wire-syntax text (`a(n0, Y)`), drawn from a
//! small rotating pool of bound constants so the server's view catalog
//! settles to a handful of adorned bindings (the serving sweet spot the
//! paper motivates); updates reuse the stateful generators in
//! [`updates`](crate::updates), so every update in the stream is a real
//! state change when replayed in order.

use crate::node;
use crate::rng::SplitMix64;
use crate::updates::{ancestor_update_stream, UpdateOp};

/// One request of a generated serving workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeRequest {
    /// A query, in wire/source syntax (e.g. `a(n0, Y)`).
    Query(String),
    /// A base-fact update (insert or retract).
    Update(UpdateOp),
}

impl ServeRequest {
    /// True for queries.
    pub fn is_query(&self) -> bool {
        matches!(self, ServeRequest::Query(_))
    }
}

/// A deterministic query/update mix over the `n`-node ancestor workload.
///
/// Of the `ops` requests, roughly `query_pct`% are queries
/// `a(node(i), Y)` with `i` drawn from the first `bindings` nodes (each
/// distinct `i` is one adorned binding, hence one materialized view on
/// the server); the rest are `par`-edge updates from
/// [`ancestor_update_stream`] with `insert_pct`% insertions, starting
/// from the [`crate::chain`]`(n - 1)` state.  Same seed, same stream.
pub fn ancestor_request_stream(
    n: usize,
    ops: usize,
    query_pct: u32,
    bindings: usize,
    insert_pct: u32,
    seed: u64,
) -> Vec<ServeRequest> {
    assert!(bindings >= 1, "need at least one query binding");
    assert!(bindings <= n, "query bindings must name existing nodes");
    let mut rng = SplitMix64::seed_from_u64(seed);
    // Updates come from the stateful generator (seeded independently of
    // the interleaving draws so the update subsequence is replayable on
    // its own); generating `ops` of them guarantees the mix never runs
    // dry.
    let updates = ancestor_update_stream(n, ops, insert_pct, seed ^ 0x5EED_FACE);
    let mut updates = updates.into_iter();
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        if rng.random_ratio(query_pct, 100) {
            let i = rng.random_range(0..bindings);
            out.push(ServeRequest::Query(format!("a({}, Y)", node(i))));
        } else {
            match updates.next() {
                Some(op) => out.push(ServeRequest::Update(op)),
                // The update generator dropped an op (saturated state):
                // fall back to a query so the stream length is exact.
                None => {
                    let i = rng.random_range(0..bindings);
                    out.push(ServeRequest::Query(format!("a({}, Y)", node(i))));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stream_is_deterministic_and_mixed() {
        let a = ancestor_request_stream(32, 200, 80, 4, 60, 0xFACE);
        let b = ancestor_request_stream(32, 200, 80, 4, 60, 0xFACE);
        assert_eq!(a, b);
        assert_ne!(a, ancestor_request_stream(32, 200, 80, 4, 60, 0xBEAD));
        assert_eq!(a.len(), 200);
        let queries = a.iter().filter(|r| r.is_query()).count();
        // 80% nominal; leave wide noise margins.
        assert!(queries > 120 && queries < 195, "queries: {queries}");
        // Only the configured bindings are queried.
        for request in &a {
            if let ServeRequest::Query(text) = request {
                assert!(text.starts_with("a(n"), "query: {text}");
                let idx: usize = text["a(n".len()..text.find(',').unwrap()].parse().unwrap();
                assert!(idx < 4, "binding out of pool: {text}");
            }
        }
        // The update subsequence replays as real state changes.
        let mut db = crate::chain(31);
        for request in &a {
            if let ServeRequest::Update(op) = request {
                match op {
                    UpdateOp::Insert(f) => assert!(db.insert_fact(f)),
                    UpdateOp::Retract(f) => assert!(db.remove_fact(f)),
                }
            }
        }
    }
}
