//! Streaming update generators: deterministic insert/retract sequences
//! over the paper's benchmark shapes, for exercising and benchmarking
//! incremental view maintenance.
//!
//! Streams are *stateful*: the generator tracks the current fact set, so
//! insertions are always new facts and retractions always hit present
//! facts — every generated op is a real state change, which is what an
//! incremental-maintenance bench or equivalence test wants to measure.

use crate::rng::SplitMix64;
use crate::{grid_node, node, SgConfig};
use magic_datalog::{Fact, Value};
use std::collections::BTreeSet;

/// One streamed update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert a base fact that is currently absent.
    Insert(Fact),
    /// Retract a base fact that is currently present.
    Retract(Fact),
}

impl UpdateOp {
    /// The fact being inserted or retracted.
    pub fn fact(&self) -> &Fact {
        match self {
            UpdateOp::Insert(f) | UpdateOp::Retract(f) => f,
        }
    }

    /// True for insertions.
    pub fn is_insert(&self) -> bool {
        matches!(self, UpdateOp::Insert(_))
    }
}

fn pair_fact(pred: &str, a: String, b: String) -> Fact {
    Fact::plain(pred, vec![Value::sym(&a), Value::sym(&b)])
}

/// A stateful stream generator over binary facts: draws random inserts of
/// absent candidate facts and retracts of present ones.
struct PairStream {
    rng: SplitMix64,
    /// Facts currently present, as candidate-index pairs.
    present: BTreeSet<usize>,
    /// Probability numerator (out of 100) of drawing an insert.
    insert_pct: u32,
}

impl PairStream {
    fn next_op(
        &mut self,
        candidates: usize,
        fact_of: &mut impl FnMut(usize) -> Fact,
    ) -> Option<UpdateOp> {
        let want_insert = self.present.is_empty()
            || (self.present.len() < candidates && self.rng.random_ratio(self.insert_pct, 100));
        if want_insert {
            // Rejection-sample an absent candidate; the candidate space is
            // at most a small constant factor larger than the present set.
            for _ in 0..(4 * candidates).max(16) {
                let i = self.rng.random_range(0..candidates);
                if self.present.insert(i) {
                    return Some(UpdateOp::Insert(fact_of(i)));
                }
            }
            None
        } else {
            let nth = self.rng.random_range(0..self.present.len());
            let &i = self.present.iter().nth(nth).expect("nth < len");
            self.present.remove(&i);
            Some(UpdateOp::Retract(fact_of(i)))
        }
    }
}

/// A deterministic insert/retract stream of `par` edges over the node set
/// of an `n`-node ancestor workload.
///
/// Candidate edges are `par(node(i), node(j))` for `i, j < n`; the stream
/// starts from the chain edges `par(node(i), node(i+1))` being present (the
/// state [`crate::chain`]`(n - 1)` produces, so a stream can be replayed
/// directly against a view materialized over that database).
/// `insert_pct` of the ops (roughly) are insertions.
pub fn ancestor_update_stream(n: usize, ops: usize, insert_pct: u32, seed: u64) -> Vec<UpdateOp> {
    assert!(n >= 2, "need at least two nodes");
    let candidates = n * n;
    let present: BTreeSet<usize> = (0..n - 1).map(|i| i * n + (i + 1)).collect();
    let mut stream = PairStream {
        rng: SplitMix64::seed_from_u64(seed),
        present,
        insert_pct,
    };
    let mut fact_of = |i: usize| pair_fact("par", node(i / n), node(i % n));
    (0..ops)
        .filter_map(|_| stream.next_op(candidates, &mut fact_of))
        .collect()
}

/// A deterministic insert/retract stream of `flat` edges over the node set
/// of a same-generation grid (see [`crate::same_generation_grid`]).
///
/// The `up`/`down` skeleton is left untouched (retracting it mostly
/// disconnects the query constant); the stream churns the `flat` relation,
/// which is where same-generation derivations actually branch.  The stream
/// assumes the `flat_everywhere` grid as its starting state.
pub fn same_generation_update_stream(
    config: SgConfig,
    ops: usize,
    insert_pct: u32,
    seed: u64,
) -> Vec<UpdateOp> {
    assert!(config.width >= 2, "need at least two columns");
    let levels = config.depth + 1;
    let width = config.width;
    // Candidate flat edges: any ordered pair of distinct columns per level.
    let per_level = width * (width - 1);
    let candidates = levels * per_level;
    let index_of = |level: usize, a: usize, b: usize| {
        debug_assert_ne!(a, b);
        let pair = a * (width - 1) + if b < a { b } else { b - 1 };
        level * per_level + pair
    };
    // The grid starts with bidirectional adjacent-column edges (on every
    // level, or only the top one — mirror `same_generation_grid`).
    let mut present = BTreeSet::new();
    for level in 0..levels {
        if !config.flat_everywhere && level != config.depth {
            continue;
        }
        for col in 0..width - 1 {
            present.insert(index_of(level, col, col + 1));
            present.insert(index_of(level, col + 1, col));
        }
    }
    let mut stream = PairStream {
        rng: SplitMix64::seed_from_u64(seed),
        present,
        insert_pct,
    };
    let mut fact_of = |i: usize| {
        let level = i / per_level;
        let pair = i % per_level;
        let a = pair / (width - 1);
        let rest = pair % (width - 1);
        let b = if rest < a { rest } else { rest + 1 };
        pair_fact("flat", grid_node(level, a), grid_node(level, b))
    };
    (0..ops)
        .filter_map(|_| stream.next_op(candidates, &mut fact_of))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::same_generation_grid;
    use magic_storage::Database;

    /// Replaying a stream against its starting database must keep every op
    /// a real state change.
    fn assert_state_changing(start: &Database, stream: &[UpdateOp]) {
        let mut db = start.clone();
        for op in stream {
            match op {
                UpdateOp::Insert(f) => assert!(db.insert_fact(f), "{f:?} was present"),
                UpdateOp::Retract(f) => assert!(db.remove_fact(f), "{f:?} was absent"),
            }
        }
    }

    #[test]
    fn ancestor_stream_is_deterministic_and_state_changing() {
        let a = ancestor_update_stream(8, 60, 60, 0xFEED);
        let b = ancestor_update_stream(8, 60, 60, 0xFEED);
        assert_eq!(a, b);
        assert_ne!(a, ancestor_update_stream(8, 60, 60, 0xBEEF));
        assert!(a.len() >= 50, "stream should rarely drop ops");
        assert_state_changing(&crate::chain(7), &a);
        assert!(a.iter().any(UpdateOp::is_insert));
        assert!(a.iter().any(|op| !op.is_insert()));
    }

    #[test]
    fn sg_stream_matches_grid_start_state() {
        let cfg = SgConfig {
            depth: 2,
            width: 4,
            flat_everywhere: true,
        };
        let stream = same_generation_update_stream(cfg, 40, 50, 0x5EED);
        assert!(!stream.is_empty());
        assert_state_changing(&same_generation_grid(cfg), &stream);
        // Only flat facts are streamed.
        for op in &stream {
            assert_eq!(op.fact().pred.to_string(), "flat");
        }
    }
}
