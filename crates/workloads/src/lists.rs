//! Ground lists for the `reverse`/`append` workload (Appendix problem 4).

use magic_datalog::{Term, Value};
use magic_storage::Database;

/// The ground list value `[e0, e1, ..., e_{n-1}]`.
pub fn list_value(n: usize) -> Value {
    Value::list((0..n).map(|i| Value::sym(&format!("e{i}"))).collect())
}

/// The ground list term `[e0, e1, ..., e_{n-1}]`.
pub fn list_term(n: usize) -> Term {
    list_value(n).to_term()
}

/// The (empty) extensional database for the reverse workload — `reverse` and
/// `append` are entirely derived, the input list lives in the query.
pub fn reverse_database() -> Database {
    Database::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_roundtrip() {
        let v = list_value(3);
        assert_eq!(v.as_list().unwrap().len(), 3);
        assert_eq!(list_term(3).to_string(), "[e0, e1, e2]");
        assert_eq!(list_term(0).to_string(), "[]");
        assert_eq!(reverse_database().total_facts(), 0);
    }

    #[test]
    fn list_length_matches_paper_measure() {
        // |[e0,...,e_{n-1}]| = 2n + 1 (n cons cells, n constants, one nil).
        assert_eq!(list_value(4).length(), 9);
    }
}
