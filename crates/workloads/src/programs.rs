//! The four benchmark programs of the paper's Appendix (A.1), ready-parsed.

use magic_datalog::{parse_program, parse_query, Program, Query, Term};

/// Appendix problem (1): the linear ancestor program.
pub fn ancestor() -> Program {
    parse_program(
        "a(X, Y) :- par(X, Y).
         a(X, Y) :- par(X, Z), a(Z, Y).",
    )
    .expect("ancestor program parses")
}

/// The ancestor program written over the `par`/`anc` names used in the
/// paper's introduction (identical structure to [`ancestor`]).
pub fn ancestor_intro() -> Program {
    parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .expect("ancestor program parses")
}

/// Appendix problem (2): the nonlinear ancestor program.
pub fn nonlinear_ancestor() -> Program {
    parse_program(
        "a(X, Y) :- par(X, Y).
         a(X, Y) :- a(X, Z), a(Z, Y).",
    )
    .expect("nonlinear ancestor program parses")
}

/// Example 1: the nonlinear same-generation program.
pub fn same_generation() -> Program {
    parse_program(
        "sg(X, Y) :- flat(X, Y).
         sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
    )
    .expect("same-generation program parses")
}

/// Appendix problem (3): the nested same-generation program.
pub fn nested_same_generation() -> Program {
    parse_program(
        "p(X, Y) :- b1(X, Y).
         p(X, Y) :- sg(X, Z1), p(Z1, Z2), b2(Z2, Y).
         sg(X, Y) :- flat(X, Y).
         sg(X, Y) :- up(X, Z1), sg(Z1, Z2), down(Z2, Y).",
    )
    .expect("nested same-generation program parses")
}

/// Appendix problem (4): list reverse (with append).
pub fn list_reverse() -> Program {
    parse_program(
        "append(V, [], [V]) :- .
         append(V, [W | X], [W | Y]) :- append(V, X, Y).
         reverse([], []) :- .
         reverse([V | X], Y) :- reverse(X, Z), append(V, Z, Y).",
    )
    .expect("list reverse program parses")
}

/// The query `a(n0, Y)?` used by the ancestor experiments.
pub fn ancestor_query(constant: &str) -> Query {
    parse_query(&format!("a({constant}, Y)")).expect("query parses")
}

/// The query `sg(c, Y)?` used by the same-generation experiments.
pub fn same_generation_query(constant: &str) -> Query {
    parse_query(&format!("sg({constant}, Y)")).expect("query parses")
}

/// The query `p(c, Y)?` used by the nested same-generation experiments.
pub fn nested_sg_query(constant: &str) -> Query {
    parse_query(&format!("p({constant}, Y)")).expect("query parses")
}

/// The query `reverse(list, Y)?` for a concrete input list.
pub fn reverse_query(list: Term) -> Query {
    Query::plain("reverse", vec![list, Term::var("Y")])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::list_term;

    #[test]
    fn all_programs_parse_and_validate_connectivity() {
        for program in [
            ancestor(),
            ancestor_intro(),
            nonlinear_ancestor(),
            same_generation(),
            nested_same_generation(),
            list_reverse(),
        ] {
            for rule in &program.rules {
                rule.check_connected().unwrap();
            }
            assert!(!program.is_empty());
        }
    }

    #[test]
    fn queries_have_expected_adornments() {
        assert_eq!(ancestor_query("n0").adornment().to_string(), "bf");
        assert_eq!(same_generation_query("l0c0").adornment().to_string(), "bf");
        assert_eq!(nested_sg_query("l0c0").adornment().to_string(), "bf");
        assert_eq!(reverse_query(list_term(3)).adornment().to_string(), "bf");
    }

    #[test]
    fn datalog_classification() {
        assert!(ancestor().is_datalog());
        assert!(nested_same_generation().is_datalog());
        assert!(!list_reverse().is_datalog());
    }
}
