//! # magic-workloads
//!
//! Synthetic workload generators for the *Power of Magic* experiments: the
//! canonical deductive-database benchmark data sets used throughout the
//! magic-sets literature (parent chains, trees and random DAGs for
//! `ancestor`; layered `up`/`flat`/`down` structures for `same-generation`;
//! ground lists for `reverse`), the cyclic variants used by the safety
//! experiments, and the Appendix's four benchmark programs ready-parsed.
//! The [`chaos`] module extends the same seeded-and-reproducible
//! discipline to fault schedules for the serving stack's
//! fault-injection seam.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ancestor;
pub mod chaos;
pub mod lists;
pub mod load;
pub mod programs;
pub mod requests;
pub mod rng;
pub mod same_generation;
pub mod stratified;
pub mod updates;

pub use ancestor::node;
pub use ancestor::{binary_tree, chain, cycle, random_dag};
pub use chaos::{chaos_fault_spec, chaos_scenarios, ChaosScenario};
pub use lists::{list_term, list_value, reverse_database};
pub use load::{LoadConfig, LoadGen, PoissonArrivals, Zipf};
pub use requests::{ancestor_request_stream, ServeRequest};
pub use rng::SplitMix64;
pub use same_generation::grid_node;
pub use same_generation::{nested_sg_extras, same_generation_grid, SgConfig};
pub use stratified::{
    bill_of_materials, bom_database, bom_oracle, game_graph, hop_graph, shortest_oracle,
    shortest_paths, unstratifiable_win_lose, win_lose, win_lose_oracle,
};
pub use updates::{ancestor_update_stream, same_generation_update_stream, UpdateOp};
