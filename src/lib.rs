//! # power-of-magic
//!
//! A reproduction of *"On the Power of Magic"* (Catriel Beeri and Raghu
//! Ramakrishnan, PODS 1987 / J. Logic Programming 1991): sideways
//! information passing, adorned programs, and the generalized magic-sets,
//! supplementary magic-sets, counting and supplementary counting rewrites —
//! all evaluated bottom-up on a from-scratch Datalog engine.
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! * [`lang`] — the Horn-clause language substrate (`magic-datalog`).
//! * [`storage`] — relations and databases (`magic-storage`).
//! * [`engine`] — naive and semi-naive bottom-up evaluation (`magic-engine`).
//! * [`magic`] — the paper's contribution: sips, adornment, the four
//!   rewrites, semijoin optimization, safety and optimality analyses
//!   (`magic-core`).
//! * [`incr`] — incremental view maintenance: live insert/retract over
//!   materialized magic-set views (`magic-incr`).
//! * [`serve`] — the concurrent TCP query-serving front end over the view
//!   catalog (`magic-serve`).
//! * [`durable`] — crash safety for the serving layer: write-ahead log,
//!   checkpoint/restore, recovery (`magic-durable`).
//! * [`workloads`] — synthetic data generators (`magic-workloads`).
//!
//! See the `examples/` directory for end-to-end usage and the `tests/`
//! directory for the reproduction of the paper's Appendix examples.  The
//! repository-level guides live next to this crate:
//!
//! * `README.md` — what the paper is, the architecture map, quickstart
//!   (library + server), how to run `perf_report`, the bench trajectory.
//! * `ARCHITECTURE.md` — one section per crate, from the slot-compiled
//!   join machine to the snapshot-and-swap serving path.

#![warn(missing_docs)]

pub use magic_core as magic;
pub use magic_datalog as lang;
pub use magic_durable as durable;
pub use magic_engine as engine;
pub use magic_incr as incr;
pub use magic_serve as serve;
pub use magic_storage as storage;
pub use magic_workloads as workloads;

pub use magic_core::planner::{Plan, Planner, Strategy};
pub use magic_datalog::{parse_program, parse_query, parse_source, Program, Query};
pub use magic_storage::Database;
