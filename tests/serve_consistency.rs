//! Snapshot consistency of the serving layer: randomized concurrent
//! readers race a writer applying an update stream, and **every** query
//! response must equal a from-scratch oracle evaluation over some prefix
//! of the applied updates — i.e. over the exact base-fact state between
//! two applied batches.  A torn read (a snapshot exposing half of a
//! maintenance batch, or a view lagging its acknowledged updates) shows
//! up as a response matching no prefix.
//!
//! The mapping from a response to its prefix is exact, not heuristic:
//! the server acknowledges an update only after publishing the snapshot
//! that contains it, and versions are handed out monotonically by the
//! single writer.  With one updater connection applying the stream in
//! order, the snapshot at version `v` holds precisely the applied
//! updates whose acknowledgment version is `<= v` (view
//! materializations also bump the version, but change no base facts).

use power_of_magic::serve::{Client, ServeConfig, Server};
use power_of_magic::workloads::{ancestor_update_stream, chain, node, programs, UpdateOp};
use power_of_magic::{Planner, Strategy};
use std::collections::BTreeSet;
use std::sync::mpsc::channel;

/// One observed response: which query, from which snapshot, what rows.
struct Observation {
    query: String,
    version: u64,
    rows: BTreeSet<Vec<power_of_magic::lang::Value>>,
}

/// Run one randomized round: `readers` concurrent query clients against
/// one updater applying `ops` stream updates, then check every response
/// against the oracle prefix its version pins.
fn consistency_round(seed: u64, edges: usize, ops: usize, readers: usize) {
    let program = programs::ancestor();
    let initial = chain(edges);
    let mut server = Server::start(
        program.clone(),
        initial.clone(),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("server starts");
    let addr = server.addr();

    let bindings: Vec<String> = [0, edges / 3, edges / 2]
        .iter()
        .map(|&i| format!("a({}, Y)", node(i)))
        .collect();

    // The updater: apply the stream in order, reporting each update's
    // acknowledgment version the moment it is acked (so readers race
    // live maintenance, not a replay).
    let stream = ancestor_update_stream(edges + 1, ops, 55, seed);
    let (ack_tx, ack_rx) = channel::<(UpdateOp, bool, u64)>();
    let updater_stream = stream.clone();
    let updater = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("updater connects");
        for op in updater_stream {
            let ack = match &op {
                UpdateOp::Insert(f) => client.insert_fact(f),
                UpdateOp::Retract(f) => client.retract_fact(f),
            }
            .expect("update acked");
            ack_tx.send((op, ack.applied, ack.version)).unwrap();
        }
    });

    // Readers: hammer the bindings until the updater is done, recording
    // every response.  Each reader also checks version monotonicity on
    // its own connection.
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader_handles: Vec<_> = (0..readers)
        .map(|r| {
            let bindings = bindings.clone();
            let done = std::sync::Arc::clone(&done);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                let mut seen = Vec::new();
                let mut last_version = 0u64;
                let mut i = 0usize;
                while !done.load(std::sync::atomic::Ordering::Relaxed) || i < 8 {
                    let query = &bindings[(r + i) % bindings.len()];
                    let reply = client.query(query).expect("query answered");
                    assert!(
                        reply.version >= last_version,
                        "snapshot versions must be monotone per connection \
                         ({last_version} then {})",
                        reply.version
                    );
                    last_version = reply.version;
                    seen.push(Observation {
                        query: query.clone(),
                        version: reply.version,
                        rows: reply.rows.into_iter().collect(),
                    });
                    i += 1;
                    if i > 10_000 {
                        break; // safety valve; never hit in practice
                    }
                }
                seen
            })
        })
        .collect();

    updater.join().expect("updater finishes");
    done.store(true, std::sync::atomic::Ordering::Relaxed);
    let observations: Vec<Observation> = reader_handles
        .into_iter()
        .flat_map(|h| h.join().expect("reader finishes"))
        .collect();
    server.shutdown();

    // Acked updates, in application order (the updater is the only
    // writer, so issue order IS application order).
    let acked: Vec<(UpdateOp, bool, u64)> = ack_rx.try_iter().collect();
    assert_eq!(acked.len(), ops, "every update must be acknowledged");

    // Oracle base states: prefix k = initial plus the first k *applied*
    // updates; `versions[k]` is the earliest published version whose
    // snapshot contains exactly that prefix.
    let mut bases = vec![initial.clone()];
    let mut versions = vec![0u64];
    let mut current = initial;
    for (op, applied, version) in &acked {
        if !applied {
            continue;
        }
        let changed = match op {
            UpdateOp::Insert(f) => current.insert_fact(f),
            UpdateOp::Retract(f) => current.remove_fact(f),
        };
        assert!(
            changed,
            "server applied {op:?} but the oracle replay did not"
        );
        bases.push(current.clone());
        versions.push(*version);
    }

    // Every response must equal the from-scratch answers over the unique
    // prefix its snapshot version pins.
    let planner = Planner::new(Strategy::MagicSets);
    let mut oracle_cache: std::collections::HashMap<(usize, String), BTreeSet<Vec<_>>> =
        std::collections::HashMap::new();
    let mut checked = 0usize;
    for obs in &observations {
        // The last prefix whose first-containing version is <= obs.version.
        let prefix = versions.partition_point(|&v| v <= obs.version) - 1;
        let query = power_of_magic::parse_query(&obs.query).unwrap();
        let expected = oracle_cache
            .entry((prefix, obs.query.clone()))
            .or_insert_with(|| {
                planner
                    .evaluate(&program, &query, &bases[prefix])
                    .expect("oracle evaluates")
                    .answers
            });
        assert_eq!(
            &obs.rows, expected,
            "torn read: {} at version {} (prefix {prefix}) diverged from the oracle",
            obs.query, obs.version
        );
        checked += 1;
    }
    assert!(
        checked >= readers * 8,
        "too few observations to mean anything: {checked}"
    );
}

#[test]
fn randomized_readers_match_oracle_prefixes() {
    for (seed, edges, ops, readers) in [
        (0xC0FFEE, 16, 40, 3),
        (0xDECAF, 12, 60, 2),
        (0x5EED, 20, 30, 4),
    ] {
        consistency_round(seed, edges, ops, readers);
    }
}

/// The sharded layout under the same no-torn-reads contract.  With
/// `writer_shards: 4`, versions are handed out by a global counter but
/// published per shard, so a cross-shard version no longer pins a
/// unique prefix — the checks here are on *content*:
///
/// * **read-your-writes** — after every acknowledged update, a query on
///   the updater's own connection must see exactly the oracle state of
///   the full acked prefix (the ack barrier promises the batch is
///   published on every shard before the ack goes out);
/// * **no torn reads** — every concurrent reader observation must
///   equal the from-scratch oracle over *some* acked prefix;
/// * **per-binding monotonicity** — one binding lives on one shard's
///   snapshot slot, so versions for the same query never go backward
///   on a connection.
#[test]
fn four_shard_serving_is_read_your_writes_and_never_tears() {
    let program = programs::ancestor();
    let edges = 14usize;
    let initial = chain(edges);
    let config = ServeConfig {
        writer_shards: 4,
        ..ServeConfig::default()
    };
    let mut server = Server::start(program.clone(), initial.clone(), "127.0.0.1:0", config)
        .expect("server starts");
    let addr = server.addr();
    let planner = Planner::new(Strategy::MagicSets);
    let probe_query = format!("a({}, Y)", node(0));

    // A concurrent reader hammers one binding for the whole run.
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let done = std::sync::Arc::clone(&done);
        let query = probe_query.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("reader connects");
            let mut seen: Vec<(u64, BTreeSet<Vec<power_of_magic::lang::Value>>)> = Vec::new();
            let mut last_version = 0u64;
            while !done.load(std::sync::atomic::Ordering::Relaxed) || seen.len() < 8 {
                let reply = client.query(&query).expect("query answered");
                assert!(
                    reply.version >= last_version,
                    "per-binding versions must be monotone ({last_version} then {})",
                    reply.version
                );
                last_version = reply.version;
                seen.push((reply.version, reply.rows.into_iter().collect()));
                if seen.len() > 10_000 {
                    break; // safety valve; never hit in practice
                }
            }
            seen
        })
    };

    // The updater: apply the stream, and after every ack re-read the
    // probe binding — the answer must equal the oracle over exactly
    // the acked prefix, every time, across whatever shards the batch
    // fanned out to.
    let stream = ancestor_update_stream(edges + 1, 40, 55, 0xBEE5_1987);
    let mut client = Client::connect(addr).expect("updater connects");
    let mut current = initial.clone();
    let mut prefix_answers = Vec::new();
    let parsed_probe = power_of_magic::parse_query(&probe_query).unwrap();
    let oracle = |db: &power_of_magic::storage::Database| {
        planner
            .evaluate(&program, &parsed_probe, db)
            .expect("oracle evaluates")
            .answers
    };
    prefix_answers.push(oracle(&current));
    for op in stream {
        let ack = match &op {
            UpdateOp::Insert(f) => client.insert_fact(f),
            UpdateOp::Retract(f) => client.retract_fact(f),
        }
        .expect("update acked");
        if ack.applied {
            let changed = match &op {
                UpdateOp::Insert(f) => current.insert_fact(f),
                UpdateOp::Retract(f) => current.remove_fact(f),
            };
            assert!(
                changed,
                "server applied {op:?} but the oracle replay did not"
            );
            prefix_answers.push(oracle(&current));
        }
        let reply = client.query(&probe_query).expect("read-your-writes query");
        let got: BTreeSet<_> = reply.rows.into_iter().collect();
        assert_eq!(
            &got,
            prefix_answers.last().unwrap(),
            "read-your-writes broke after {op:?}"
        );
    }
    done.store(true, std::sync::atomic::Ordering::Relaxed);
    let observations = reader.join().expect("reader finishes");
    server.shutdown();

    // Every concurrent observation matches some acked prefix exactly.
    for (version, rows) in &observations {
        assert!(
            prefix_answers.iter().any(|answers| answers == rows),
            "torn read at version {version}: {} answers match no acked prefix",
            rows.len()
        );
    }
    assert!(observations.len() >= 8);
}

/// A batch submitted through several concurrent updater connections must
/// still never tear: responses may land between any two *applied*
/// updates, but each response must match some prefix of the writer's
/// serialization.  With concurrent updaters the application order is the
/// writer's, not the issue order, so this round only checks that every
/// response matches *some* reachable base state (set of applied facts
/// consistent with acks at that version), using disjoint fact ranges per
/// updater to keep the reachable states enumerable.
#[test]
fn concurrent_updaters_never_tear_snapshots() {
    let program = programs::ancestor();
    let edges = 12usize;
    let initial = chain(edges);
    let mut server = Server::start(
        program.clone(),
        initial.clone(),
        "127.0.0.1:0",
        ServeConfig::default(),
    )
    .expect("server starts");
    let addr = server.addr();

    // Two updaters insert disjoint brand-new edge sets; commutative, so
    // any interleaving yields a state determined by the two applied
    // *counts* — but per-updater, inserts are ordered, so the reachable
    // states are exactly (k1, k2) prefixes.
    let updater = |offset: usize| {
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("updater connects");
            let mut acked = Vec::new();
            for i in 0..10 {
                let fact = format!("par(x{offset}_{i}, x{offset}_{})", i + 1);
                let ack = client.insert(&fact).expect("insert acked");
                assert!(ack.applied);
                acked.push(ack.version);
            }
            acked
        })
    };
    let u1 = updater(1);
    let u2 = updater(2);

    let reader = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("reader connects");
        let mut seen = Vec::new();
        for _ in 0..120 {
            let reply = client.query("a(x1_0, Y)").expect("query answered");
            seen.push((reply.version, reply.rows.len()));
        }
        seen
    });

    let acks1 = u1.join().unwrap();
    let acks2 = u2.join().unwrap();
    let seen = reader.join().unwrap();
    server.shutdown();

    // From updater 1's chain, a(x1_0, Y) reaches exactly the inserted
    // suffix: k1 applied inserts => k1 answers.  Updater 2's facts are
    // disconnected and must never leak into this view's answers.
    for (version, answers) in seen {
        // How many of updater 1's inserts are guaranteed in (acked <=
        // version) and how many could possibly be in (any insert whose
        // predecessor was acked <= version could already be applied).
        let lower = acks1.iter().filter(|&&v| v <= version).count();
        assert!(
            answers >= lower,
            "version {version}: {answers} answers but {lower} inserts were acked"
        );
        assert!(
            answers <= 10,
            "version {version}: impossible answer count {answers}"
        );
        let _ = &acks2; // order between updaters is unconstrained
    }
}
