//! Property-based equivalence tests (Theorems 4.1, 5.1, 6.1, 7.1): on
//! randomized acyclic data and randomized query constants, every rewriting
//! strategy computes exactly the answers of the semi-naive bottom-up
//! baseline.

use power_of_magic::magic::planner::{Planner, Strategy};
use power_of_magic::workloads::{programs, random_dag};
use power_of_magic::Database;
use proptest::prelude::*;

fn answers(
    strategy: Strategy,
    program: &power_of_magic::Program,
    query: &power_of_magic::Query,
    db: &Database,
) -> std::collections::BTreeSet<Vec<power_of_magic::lang::Value>> {
    Planner::new(strategy)
        .evaluate(program, query, db)
        .unwrap_or_else(|e| panic!("{strategy} failed: {e}"))
        .answers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Ancestor over random DAGs: all strategies agree for every query node.
    #[test]
    fn ancestor_strategies_agree_on_random_dags(
        nodes in 4usize..28,
        edge_factor in 1usize..3,
        seed in 0u64..1000,
        query_node in 0usize..28,
    ) {
        let program = programs::ancestor();
        let db = random_dag(nodes, nodes * edge_factor, seed);
        let query = programs::ancestor_query(&format!("n{}", query_node % nodes));
        let reference = answers(Strategy::SemiNaiveBottomUp, &program, &query, &db);
        for strategy in Strategy::ALL {
            prop_assert_eq!(
                answers(strategy, &program, &query, &db),
                reference.clone(),
                "strategy {} disagrees", strategy
            );
        }
    }

    /// The nonlinear ancestor program agrees with the linear one under the
    /// magic rewrites (same least model, different rules and sips).
    #[test]
    fn nonlinear_and_linear_ancestor_agree(
        nodes in 4usize..25,
        seed in 0u64..500,
        query_node in 0usize..25,
    ) {
        let linear = programs::ancestor();
        let nonlinear = programs::nonlinear_ancestor();
        let db = random_dag(nodes, nodes * 2, seed);
        let query = programs::ancestor_query(&format!("n{}", query_node % nodes));
        let reference = answers(Strategy::SemiNaiveBottomUp, &linear, &query, &db);
        for strategy in [Strategy::MagicSets, Strategy::SupplementaryMagicSets] {
            prop_assert_eq!(answers(strategy, &nonlinear, &query, &db), reference.clone());
        }
    }

    /// Magic answers are monotone in the data: adding edges never removes
    /// answers (a soundness smoke test for the delta-based evaluation).
    #[test]
    fn magic_answers_are_monotone(
        nodes in 4usize..25,
        seed in 0u64..500,
        query_node in 0usize..25,
    ) {
        let program = programs::ancestor();
        let small = random_dag(nodes, nodes, seed);
        let large = {
            let mut db = random_dag(nodes, nodes, seed);
            let extra = random_dag(nodes, nodes, seed.wrapping_add(1));
            db.merge(&extra);
            db
        };
        let query = programs::ancestor_query(&format!("n{}", query_node % nodes));
        let small_answers = answers(Strategy::MagicSets, &program, &query, &small);
        let large_answers = answers(Strategy::MagicSets, &program, &query, &large);
        prop_assert!(small_answers.is_subset(&large_answers));
    }

    /// Reverse computes the actual reversal for arbitrary small lists, under
    /// every rewrite (the baselines cannot run this program).
    #[test]
    fn reverse_is_correct_for_random_lists(len in 0usize..10) {
        let program = programs::list_reverse();
        let db = power_of_magic::workloads::reverse_database();
        let query = programs::reverse_query(power_of_magic::workloads::list_term(len));
        let expected: Vec<String> = (0..len).rev().map(|i| format!("e{i}")).collect();
        for strategy in [
            Strategy::MagicSets,
            Strategy::SupplementaryMagicSets,
            Strategy::Counting,
            Strategy::SupplementaryCounting,
        ] {
            let result = answers(strategy, &program, &query, &db);
            prop_assert_eq!(result.len(), 1);
            let items: Vec<String> = result
                .iter()
                .next()
                .unwrap()[0]
                .as_list()
                .unwrap()
                .iter()
                .map(|v| v.to_string())
                .collect();
            prop_assert_eq!(items, expected.clone());
        }
    }
}
