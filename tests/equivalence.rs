//! Randomized equivalence tests (Theorems 4.1, 5.1, 6.1, 7.1): on
//! randomized acyclic data and randomized query constants, every rewriting
//! strategy computes exactly the answers of the semi-naive bottom-up
//! baseline.
//!
//! Originally written against `proptest`; the build environment has no
//! crates.io access, so the same properties are now driven from the
//! in-tree [`SplitMix64`] PRNG with fixed seeds (deterministic, so a
//! failure is always reproducible from the case index).

use power_of_magic::magic::planner::{Planner, Strategy};
use power_of_magic::workloads::{programs, random_dag, SplitMix64};
use power_of_magic::Database;

fn answers(
    strategy: Strategy,
    program: &power_of_magic::Program,
    query: &power_of_magic::Query,
    db: &Database,
) -> std::collections::BTreeSet<Vec<power_of_magic::lang::Value>> {
    Planner::new(strategy)
        .evaluate(program, query, db)
        .unwrap_or_else(|e| panic!("{strategy} failed: {e}"))
        .answers
}

/// Ancestor over random DAGs: all strategies agree for every query node.
#[test]
fn ancestor_strategies_agree_on_random_dags() {
    let mut rng = SplitMix64::seed_from_u64(1987);
    for case in 0..16 {
        let nodes = rng.random_range(4..28);
        let edge_factor = rng.random_range(1..3);
        let seed = rng.next_u64() % 1000;
        let query_node = rng.random_range(0..28) % nodes;
        let program = programs::ancestor();
        let db = random_dag(nodes, nodes * edge_factor, seed);
        let query = programs::ancestor_query(&format!("n{query_node}"));
        let reference = answers(Strategy::SemiNaiveBottomUp, &program, &query, &db);
        for strategy in Strategy::ALL {
            assert_eq!(
                answers(strategy, &program, &query, &db),
                reference,
                "case {case}: strategy {strategy} disagrees (nodes={nodes}, seed={seed}, query=n{query_node})"
            );
        }
    }
}

/// The nonlinear ancestor program agrees with the linear one under the
/// magic rewrites (same least model, different rules and sips).
#[test]
fn nonlinear_and_linear_ancestor_agree() {
    let mut rng = SplitMix64::seed_from_u64(41);
    for case in 0..16 {
        let nodes = rng.random_range(4..25);
        let seed = rng.next_u64() % 500;
        let query_node = rng.random_range(0..25) % nodes;
        let linear = programs::ancestor();
        let nonlinear = programs::nonlinear_ancestor();
        let db = random_dag(nodes, nodes * 2, seed);
        let query = programs::ancestor_query(&format!("n{query_node}"));
        let reference = answers(Strategy::SemiNaiveBottomUp, &linear, &query, &db);
        for strategy in [Strategy::MagicSets, Strategy::SupplementaryMagicSets] {
            assert_eq!(
                answers(strategy, &nonlinear, &query, &db),
                reference,
                "case {case}: {strategy} (nodes={nodes}, seed={seed}, query=n{query_node})"
            );
        }
    }
}

/// Magic answers are monotone in the data: adding edges never removes
/// answers (a soundness smoke test for the delta-based evaluation).
#[test]
fn magic_answers_are_monotone() {
    let mut rng = SplitMix64::seed_from_u64(90210);
    for case in 0..16 {
        let nodes = rng.random_range(4..25);
        let seed = rng.next_u64() % 500;
        let query_node = rng.random_range(0..25) % nodes;
        let program = programs::ancestor();
        let small = random_dag(nodes, nodes, seed);
        let large = {
            let mut db = random_dag(nodes, nodes, seed);
            let extra = random_dag(nodes, nodes, seed.wrapping_add(1));
            db.merge(&extra);
            db
        };
        let query = programs::ancestor_query(&format!("n{query_node}"));
        let small_answers = answers(Strategy::MagicSets, &program, &query, &small);
        let large_answers = answers(Strategy::MagicSets, &program, &query, &large);
        assert!(
            small_answers.is_subset(&large_answers),
            "case {case}: monotonicity violated (nodes={nodes}, seed={seed}, query=n{query_node})"
        );
    }
}

/// Reverse computes the actual reversal for arbitrary small lists, under
/// every rewrite (the baselines cannot run this program).
#[test]
fn reverse_is_correct_for_random_lists() {
    for len in 0..10 {
        let program = programs::list_reverse();
        let db = power_of_magic::workloads::reverse_database();
        let query = programs::reverse_query(power_of_magic::workloads::list_term(len));
        let expected: Vec<String> = (0..len).rev().map(|i| format!("e{i}")).collect();
        for strategy in [
            Strategy::MagicSets,
            Strategy::SupplementaryMagicSets,
            Strategy::Counting,
            Strategy::SupplementaryCounting,
        ] {
            let result = answers(strategy, &program, &query, &db);
            assert_eq!(result.len(), 1, "len {len}, {strategy}");
            let items: Vec<String> = result.iter().next().unwrap()[0]
                .as_list()
                .unwrap()
                .iter()
                .map(|v| v.to_string())
                .collect();
            assert_eq!(items, expected, "len {len}, {strategy}");
        }
    }
}
