//! Incremental-maintenance equivalence suite.
//!
//! Correctness oracle (after Drabent's correctness-proof framing for the
//! magic transformation): after *any* sequence of insert/retract updates, a
//! maintained view must hold exactly the fact set a from-scratch
//! `Evaluator::run` derives over the updated base facts.  The suite drives
//! seeded randomized insert/retract interleavings over the paper's
//! workloads — both the raw recursive programs and their magic-sets
//! rewritings — plus the cyclic retract-then-rederive cases and the
//! non-recursive programs that exercise the exact-counting deletion path.
//! After every phase the view's per-row derivation counts are re-verified
//! against the head-bound join oracle (`MaterializedView::verify_support`).

use power_of_magic::engine::Evaluator;
use power_of_magic::incr::{MaterializedView, Update};
use power_of_magic::lang::{Fact, Program, Value};
use power_of_magic::workloads::{
    ancestor_update_stream, chain, cycle, programs, same_generation_grid,
    same_generation_update_stream, SgConfig, SplitMix64, UpdateOp,
};
use power_of_magic::{Database, Planner, Strategy};
use std::collections::BTreeSet;

fn fact_set(db: &Database) -> BTreeSet<String> {
    db.facts().map(|f| f.to_string()).collect()
}

/// Apply one streamed op to a plain EDB (the oracle's input).
fn apply_to_edb(edb: &mut Database, op: &UpdateOp) {
    match op {
        UpdateOp::Insert(f) => {
            edb.insert_fact(f);
        }
        UpdateOp::Retract(f) => {
            edb.remove_fact(f);
        }
    }
}

/// Apply one streamed op to a live view.
fn apply_to_view(view: &mut MaterializedView, op: &UpdateOp) {
    let changed = match op {
        UpdateOp::Insert(f) => view.insert(f).expect("insert maintains"),
        UpdateOp::Retract(f) => view.retract(f).expect("retract maintains"),
    };
    assert!(changed, "stream ops are real state changes: {op:?}");
}

/// The view must equal from-scratch evaluation over `edb`, and its support
/// counts must equal the recomputed derivation counts.
fn assert_matches_scratch(view: &MaterializedView, edb: &Database, label: &str) {
    let oracle = Evaluator::new(view.program().clone())
        .run(edb)
        .expect("oracle evaluates");
    assert_eq!(
        fact_set(view.database()),
        fact_set(&oracle.database),
        "{label}: maintained view != from-scratch oracle"
    );
    view.verify_support()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
}

/// Drive a seeded interleaving against a view of `program` and check the
/// oracle every `check_every` ops (and at the end).
fn drive(
    program: &Program,
    start: &Database,
    stream: &[UpdateOp],
    check_every: usize,
    label: &str,
) {
    let mut view = MaterializedView::new(program, start).expect("view materializes");
    let mut edb = start.clone();
    assert_matches_scratch(&view, &edb, &format!("{label}: initial"));
    for (i, op) in stream.iter().enumerate() {
        apply_to_view(&mut view, op);
        apply_to_edb(&mut edb, op);
        if (i + 1) % check_every == 0 {
            assert_matches_scratch(&view, &edb, &format!("{label}: after op {}", i + 1));
        }
    }
    assert_matches_scratch(&view, &edb, &format!("{label}: final"));
}

#[test]
fn ancestor_interleavings_match_oracle() {
    let program = programs::ancestor();
    let mut rng = SplitMix64::seed_from_u64(0x1AC5);
    for round in 0..4 {
        let n = rng.random_range(5..12);
        let seed = rng.next_u64();
        let stream = ancestor_update_stream(n, 40, 55, seed);
        drive(
            &program,
            &chain(n - 1),
            &stream,
            7,
            &format!("ancestor round {round} (n {n}, seed {seed:#x})"),
        );
    }
}

#[test]
fn magic_rewritten_ancestor_interleavings_match_oracle() {
    // The headline case: maintain the *magic-rewritten* program (the
    // materialized magic-set view) under the same streams.
    let program = programs::ancestor();
    let query = programs::ancestor_query("n0");
    let plan = Planner::new(Strategy::MagicSets)
        .plan(&program, &query)
        .expect("gms plans ancestor");
    let mut rng = SplitMix64::seed_from_u64(0x9A61);
    for round in 0..3 {
        let n = rng.random_range(5..11);
        let seed = rng.next_u64();
        let stream = ancestor_update_stream(n, 30, 55, seed);
        drive(
            &plan.program,
            &chain(n - 1),
            &stream,
            6,
            &format!("gms ancestor round {round} (n {n}, seed {seed:#x})"),
        );
    }
}

#[test]
fn same_generation_interleavings_match_oracle() {
    let program = programs::same_generation();
    let mut rng = SplitMix64::seed_from_u64(0x56E7);
    for round in 0..3 {
        let cfg = SgConfig {
            depth: rng.random_range(1..3),
            width: rng.random_range(2..5),
            flat_everywhere: true,
        };
        let seed = rng.next_u64();
        let stream = same_generation_update_stream(cfg, 24, 50, seed);
        drive(
            &program,
            &same_generation_grid(cfg),
            &stream,
            6,
            &format!(
                "sg round {round} ({}x{}, seed {seed:#x})",
                cfg.depth, cfg.width
            ),
        );
    }
}

#[test]
fn magic_rewritten_same_generation_interleavings_match_oracle() {
    let program = programs::same_generation();
    let query = programs::same_generation_query("l0c0");
    let plan = Planner::new(Strategy::MagicSets)
        .plan(&program, &query)
        .expect("gms plans same-generation");
    let cfg = SgConfig {
        depth: 2,
        width: 4,
        flat_everywhere: true,
    };
    let stream = same_generation_update_stream(cfg, 20, 50, 0xD00D);
    drive(
        &plan.program,
        &same_generation_grid(cfg),
        &stream,
        5,
        "gms same-generation",
    );
}

#[test]
fn cyclic_retract_then_rederive() {
    // Retractions on cyclic data are the DRed stress case: every anc fact
    // on the cycle transitively supports the others, so deletion must tear
    // the island down and re-derivation must rebuild exactly the part that
    // survives.
    let program = programs::ancestor();
    for n in [3usize, 5, 8] {
        let start = cycle(n);
        let mut view = MaterializedView::new(&program, &start).expect("view materializes");
        let mut edb = start.clone();
        // On an n-cycle every node reaches every node: n^2 ancestor facts
        // (the Appendix program derives them under the predicate `a`).
        assert_eq!(
            view.database()
                .count(&power_of_magic::lang::PredName::plain("a")),
            n * n
        );
        // Break the cycle, then retract a second edge, then restore both.
        let e0 = Fact::plain("par", vec![Value::sym("n0"), Value::sym("n1")]);
        let mid = format!("n{}", n / 2);
        let mid_next = format!("n{}", (n / 2 + 1) % n);
        let e1 = Fact::plain("par", vec![Value::sym(&mid), Value::sym(&mid_next)]);
        for op in [
            UpdateOp::Retract(e0.clone()),
            UpdateOp::Retract(e1.clone()),
            UpdateOp::Insert(e0),
            UpdateOp::Insert(e1),
        ] {
            apply_to_view(&mut view, &op);
            apply_to_edb(&mut edb, &op);
            assert_matches_scratch(&view, &edb, &format!("cycle({n}) after {op:?}"));
        }
        // Fully restored: the island is back.
        assert_eq!(
            view.database()
                .count(&power_of_magic::lang::PredName::plain("a")),
            n * n
        );
    }
}

#[test]
fn counting_path_randomized_edge_churn() {
    // Non-recursive programs route retractions through exact counting;
    // the triangle rule additionally uses the same relation three times,
    // so multi-occurrence discounting is on the line.
    let program = power_of_magic::parse_program(
        "tri(X) :- e(X, Y), e(Y, Z), e(Z, X).
         hop2(X, Z) :- e(X, Y), e(Y, Z).",
    )
    .unwrap();
    let mut rng = SplitMix64::seed_from_u64(0x7121);
    for round in 0..3 {
        let nodes = rng.random_range(3..6);
        let mut present: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut edb = Database::new();
        let mut view = MaterializedView::new(&program, &edb).expect("view materializes");
        for step in 0..50 {
            let a = rng.random_range(0..nodes);
            let b = rng.random_range(0..nodes);
            let fact = Fact::plain(
                "e",
                vec![Value::sym(&format!("v{a}")), Value::sym(&format!("v{b}"))],
            );
            let op = if present.contains(&(a, b)) {
                present.remove(&(a, b));
                UpdateOp::Retract(fact)
            } else {
                present.insert((a, b));
                UpdateOp::Insert(fact)
            };
            apply_to_view(&mut view, &op);
            apply_to_edb(&mut edb, &op);
            if step % 10 == 9 {
                assert_matches_scratch(&view, &edb, &format!("triangle round {round} step {step}"));
            }
        }
        assert_matches_scratch(&view, &edb, &format!("triangle round {round} final"));
    }
}

#[test]
fn batched_apply_agrees_with_singleton_ops() {
    let program = programs::ancestor();
    let start = chain(6);
    let stream = ancestor_update_stream(7, 30, 60, 0xBA7C);

    let mut batched = MaterializedView::new(&program, &start).expect("view materializes");
    batched
        .apply(stream.iter().map(|op| match op {
            UpdateOp::Insert(f) => Update::Insert(f.clone()),
            UpdateOp::Retract(f) => Update::Retract(f.clone()),
        }))
        .expect("batched apply maintains");

    let mut single = MaterializedView::new(&program, &start).expect("view materializes");
    for op in &stream {
        apply_to_view(&mut single, op);
    }

    assert_eq!(
        fact_set(batched.database()),
        fact_set(single.database()),
        "batched apply and singleton ops disagree"
    );
    batched.verify_support().expect("batched support exact");
}
