//! Property-based round-trip tests for the parser and pretty-printer: any
//! program we can print, we can parse back to an identical AST.

use power_of_magic::lang::{parse_program, parse_rule, parse_term, Atom, Program, Rule, Term};
use proptest::prelude::*;

fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9]{0,5}".prop_map(|s| Term::sym(&s)),
        "[A-Z][a-z0-9]{0,5}".prop_map(|s| Term::var(&s)),
        (-1000i64..1000).prop_map(Term::Int),
        Just(Term::nil()),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (
                "[a-z][a-z0-9]{0,5}",
                prop::collection::vec(inner.clone(), 1..3)
            )
                .prop_map(|(f, args)| Term::app(&f, args)),
            (inner.clone(), inner).prop_map(|(h, t)| Term::cons(h, t)),
        ]
    })
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    (
        "[a-z][a-z0-9]{0,5}",
        prop::collection::vec(term_strategy(), 0..4),
    )
        .prop_map(|(p, terms)| Atom::plain(&p, terms))
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    (atom_strategy(), prop::collection::vec(atom_strategy(), 0..4))
        .prop_map(|(head, body)| Rule::new(head, body))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn term_display_parse_roundtrip(term in term_strategy()) {
        let printed = term.to_string();
        let reparsed = parse_term(&printed).unwrap_or_else(|e| panic!("could not reparse {printed}: {e}"));
        prop_assert_eq!(reparsed, term);
    }

    #[test]
    fn rule_display_parse_roundtrip(rule in rule_strategy()) {
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed).unwrap_or_else(|e| panic!("could not reparse {printed}: {e}"));
        prop_assert_eq!(reparsed, rule);
    }

    #[test]
    fn program_display_parse_roundtrip(rules in prop::collection::vec(rule_strategy(), 0..6)) {
        let program = Program::from_rules(rules);
        let printed = program.to_string();
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(reparsed, program);
    }
}
