//! Randomized round-trip tests for the parser and pretty-printer: any
//! program we can print, we can parse back to an identical AST.
//!
//! These were originally written against `proptest`; the build environment
//! has no crates.io access, so they now drive the same generators from the
//! in-tree [`SplitMix64`] PRNG with a fixed seed (deterministic, so a
//! failure is always reproducible from the case index).

use power_of_magic::lang::{parse_program, parse_rule, parse_term, Atom, Program, Rule, Term};
use power_of_magic::workloads::SplitMix64;

const CASES: usize = 128;

fn lower_name(rng: &mut SplitMix64) -> String {
    random_name(rng, b'a'..=b'z')
}

fn upper_name(rng: &mut SplitMix64) -> String {
    random_name(rng, b'A'..=b'Z')
}

/// A name matching `[first][a-z0-9]{0,5}`.
fn random_name(rng: &mut SplitMix64, first: std::ops::RangeInclusive<u8>) -> String {
    let mut s = String::new();
    let span = (*first.end() - *first.start()) as usize + 1;
    s.push((*first.start() + rng.random_range(0..span) as u8) as char);
    for _ in 0..rng.random_range(0..6) {
        let tail = b"abcdefghijklmnopqrstuvwxyz0123456789";
        s.push(tail[rng.random_range(0..tail.len())] as char);
    }
    s
}

/// A random term with nesting depth at most `depth`.
fn random_term(rng: &mut SplitMix64, depth: usize) -> Term {
    let max_choice = if depth == 0 { 4 } else { 6 };
    match rng.random_range(0..max_choice) {
        0 => Term::sym(&lower_name(rng)),
        1 => Term::var(&upper_name(rng)),
        2 => Term::Int(rng.random_range_i64(-1000..1000)),
        3 => Term::nil(),
        4 => {
            let f = lower_name(rng);
            let n = rng.random_range(1..3);
            let args = (0..n).map(|_| random_term(rng, depth - 1)).collect();
            Term::app(&f, args)
        }
        _ => {
            let head = random_term(rng, depth - 1);
            let tail = random_term(rng, depth - 1);
            Term::cons(head, tail)
        }
    }
}

fn random_atom(rng: &mut SplitMix64) -> Atom {
    let p = lower_name(rng);
    let n = rng.random_range(0..4);
    let terms = (0..n).map(|_| random_term(rng, 2)).collect();
    Atom::plain(&p, terms)
}

fn random_rule(rng: &mut SplitMix64) -> Rule {
    let head = random_atom(rng);
    let n = rng.random_range(0..4);
    let body = (0..n).map(|_| random_atom(rng)).collect();
    Rule::new(head, body)
}

#[test]
fn term_display_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xC0FFEE);
    for case in 0..CASES {
        let term = random_term(&mut rng, 3);
        let printed = term.to_string();
        let reparsed = parse_term(&printed)
            .unwrap_or_else(|e| panic!("case {case}: could not reparse {printed}: {e}"));
        assert_eq!(reparsed, term, "case {case}: {printed}");
    }
}

#[test]
fn rule_display_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF);
    for case in 0..CASES {
        let rule = random_rule(&mut rng);
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("case {case}: could not reparse {printed}: {e}"));
        assert_eq!(reparsed, rule, "case {case}: {printed}");
    }
}

#[test]
fn program_display_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xDA7A);
    for case in 0..CASES {
        let n = rng.random_range(0..6);
        let rules: Vec<Rule> = (0..n).map(|_| random_rule(&mut rng)).collect();
        let program = Program::from_rules(rules);
        let printed = program.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("case {case}: could not reparse {printed}: {e}"));
        assert_eq!(reparsed, program, "case {case}");
    }
}
