//! Randomized round-trip tests for the parser and pretty-printer: any
//! program we can print, we can parse back to an identical AST.
//!
//! These were originally written against `proptest`; the build environment
//! has no crates.io access, so they now drive the same generators from the
//! in-tree [`SplitMix64`] PRNG with a fixed seed (deterministic, so a
//! failure is always reproducible from the case index).

use power_of_magic::lang::{
    parse_program, parse_rule, parse_term, AggFunc, Aggregate, Atom, Program, Rule, Term, Variable,
};
use power_of_magic::workloads::SplitMix64;

const CASES: usize = 128;

fn lower_name(rng: &mut SplitMix64) -> String {
    random_name(rng, b'a'..=b'z')
}

fn upper_name(rng: &mut SplitMix64) -> String {
    random_name(rng, b'A'..=b'Z')
}

/// A name matching `[first][a-z0-9]{0,5}`.
fn random_name(rng: &mut SplitMix64, first: std::ops::RangeInclusive<u8>) -> String {
    let mut s = String::new();
    let span = (*first.end() - *first.start()) as usize + 1;
    s.push((*first.start() + rng.random_range(0..span) as u8) as char);
    for _ in 0..rng.random_range(0..6) {
        let tail = b"abcdefghijklmnopqrstuvwxyz0123456789";
        s.push(tail[rng.random_range(0..tail.len())] as char);
    }
    s
}

/// A random term with nesting depth at most `depth`.
fn random_term(rng: &mut SplitMix64, depth: usize) -> Term {
    let max_choice = if depth == 0 { 4 } else { 6 };
    match rng.random_range(0..max_choice) {
        0 => Term::sym(&lower_name(rng)),
        1 => Term::var(&upper_name(rng)),
        2 => Term::Int(rng.random_range_i64(-1000..1000)),
        3 => Term::nil(),
        4 => {
            let f = lower_name(rng);
            let n = rng.random_range(1..3);
            let args = (0..n).map(|_| random_term(rng, depth - 1)).collect();
            Term::app(&f, args)
        }
        _ => {
            let head = random_term(rng, depth - 1);
            let tail = random_term(rng, depth - 1);
            Term::cons(head, tail)
        }
    }
}

fn random_atom(rng: &mut SplitMix64) -> Atom {
    let p = lower_name(rng);
    let n = rng.random_range(0..4);
    let terms = (0..n).map(|_| random_term(rng, 2)).collect();
    Atom::plain(&p, terms)
}

fn random_rule(rng: &mut SplitMix64) -> Rule {
    let head = random_atom(rng);
    let n = rng.random_range(0..4);
    let body = (0..n).map(|_| random_atom(rng)).collect();
    Rule::new(head, body)
}

/// A rule with 1–2 negated body atoms on top of the positive body.
fn random_guarded_rule(rng: &mut SplitMix64) -> Rule {
    let base = random_rule(rng);
    let n = rng.random_range(1..3);
    let negated = (0..n).map(|_| random_atom(rng)).collect();
    base.with_negated(negated)
}

/// A rule whose head aggregates one position: the head term at the
/// aggregate position is the plain variable (that is the parsed form; the
/// printer re-attaches `func<Var>` around it).
fn random_aggregate_rule(rng: &mut SplitMix64) -> Rule {
    let funcs = [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max];
    let func = funcs[rng.random_range(0..funcs.len())];
    let pred = lower_name(rng);
    let arity = rng.random_range(1..4);
    let position = rng.random_range(0..arity);
    let agg_var = format!("{}agg", upper_name(rng));
    let terms = (0..arity)
        .map(|i| {
            if i == position {
                Term::var(&agg_var)
            } else {
                random_term(rng, 1)
            }
        })
        .collect();
    let n = rng.random_range(0..3);
    let body = (0..n).map(|_| random_atom(rng)).collect();
    Rule::new(Atom::plain(&pred, terms), body).with_aggregate(Aggregate {
        func,
        var: Variable::new(&agg_var),
        position,
    })
}

#[test]
fn term_display_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xC0FFEE);
    for case in 0..CASES {
        let term = random_term(&mut rng, 3);
        let printed = term.to_string();
        let reparsed = parse_term(&printed)
            .unwrap_or_else(|e| panic!("case {case}: could not reparse {printed}: {e}"));
        assert_eq!(reparsed, term, "case {case}: {printed}");
    }
}

#[test]
fn rule_display_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF);
    for case in 0..CASES {
        let rule = random_rule(&mut rng);
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("case {case}: could not reparse {printed}: {e}"));
        assert_eq!(reparsed, rule, "case {case}: {printed}");
    }
}

#[test]
fn program_display_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xDA7A);
    for case in 0..CASES {
        let n = rng.random_range(0..6);
        let rules: Vec<Rule> = (0..n).map(|_| random_rule(&mut rng)).collect();
        let program = Program::from_rules(rules);
        let printed = program.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("case {case}: could not reparse {printed}: {e}"));
        assert_eq!(reparsed, program, "case {case}");
    }
}

#[test]
fn negated_rule_display_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0x0DD_CA5E);
    for case in 0..CASES {
        let rule = random_guarded_rule(&mut rng);
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("case {case}: could not reparse {printed}: {e}"));
        assert_eq!(reparsed, rule, "case {case}: {printed}");
        assert!(reparsed.is_guarded(), "case {case}: lost the negation");
    }
}

#[test]
fn aggregate_rule_display_parse_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xA66_F01D);
    for case in 0..CASES {
        let rule = random_aggregate_rule(&mut rng);
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("case {case}: could not reparse {printed}: {e}"));
        assert_eq!(reparsed, rule, "case {case}: {printed}");
        assert_eq!(
            reparsed.aggregate, rule.aggregate,
            "case {case}: aggregate spec drifted through the printer"
        );
    }
}

#[test]
fn negation_whitespace_and_precedence_edges() {
    // (source, canonical print) — `not` binds looser than a predicate
    // name: it is a keyword only when followed by one, so `not(X)` and
    // `notx(X)` stay positive atoms.  Display normalizes negated atoms to
    // the end of the body.
    for (src, canonical) in [
        ("p(X):-q(X),not r(X).", "p(X) :- q(X), not r(X)."),
        ("p(X)  :-  q(X) ,  not\t r(X) .", "p(X) :- q(X), not r(X)."),
        ("p(X) :- not r(X), q(X).", "p(X) :- q(X), not r(X)."),
        ("p(X) :- not(X).", "p(X) :- not(X)."),
        ("p(X) :- notx(X).", "p(X) :- notx(X)."),
        (
            "quiet :- idle, not alarm.",
            "quiet() :- idle(), not alarm().",
        ),
        ("t(A,sum<C>):-u(A,C).", "t(A, sum<C>) :- u(A, C)."),
    ] {
        let rule = parse_rule(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        assert_eq!(rule.to_string(), canonical, "normalizing {src}");
        // And the canonical form is a fixed point.
        assert_eq!(
            parse_rule(canonical).unwrap(),
            rule,
            "re-parsing {canonical}"
        );
    }
}

#[test]
fn malformed_aggregate_heads_are_parse_errors() {
    // (source, expected message fragment)
    for (src, fragment) in [
        (
            "t(A, sum<C>, count<D>) :- u(A, C, D).",
            "at most one aggregate",
        ),
        ("t(A, sum<5>) :- u(A).", "must be a variable"),
        ("t(A, sum<f(C)>) :- u(A, C).", "must be a variable"),
    ] {
        let err = parse_rule(src).expect_err(src).to_string();
        assert!(
            err.contains(fragment),
            "{src}: error {err:?} should mention {fragment:?}"
        );
    }
    // An unclosed aggregate bracket and an aggregate in a body atom are
    // malformed too; the exact wording is the tokenizer's business.
    assert!(parse_rule("t(A, sum<C) :- u(A, C).").is_err());
    assert!(parse_rule("t(A) :- u(sum<C>).").is_err());
}
