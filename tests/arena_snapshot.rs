//! Arena snapshot round-trips (PR 7): the portability layer under
//! durable checkpoints.
//!
//! Raw [`ValId`] words are process-run-local (inline symbol ids and
//! node-table indexes depend on interning order), so checkpoints ship
//! an [`ArenaSnapshot`] — symbol strings in id order, node entries in
//! table order — and recovery re-installs it, remapping every stored
//! word.  Two properties carry the whole scheme:
//!
//! * **Install is the identity in the capturing process.**  Interning
//!   is hash-consed, so re-interning a captured symbol or node yields
//!   the id it already had; `install()`'s remap must therefore fix
//!   every id the snapshot covers.  (Cross-process, the remap is a
//!   genuine translation — `crates/durable` tests and the
//!   kill-and-restart suite cover that path.)
//! * **Capture is watermark-pinned.**  A snapshot covers exactly the
//!   nodes interned before it was taken; later interning grows the
//!   arena without invalidating earlier snapshots.
//!
//! The seeded loop mirrors `tests/packed_storage.rs`: random nested
//! values spanning every encoding (inline ints, table ints, inline
//! symbols, compounds, lists) — deterministic, no `rand`.

use power_of_magic::lang::{ArenaSnapshot, ValId, Value};
use power_of_magic::workloads::SplitMix64;

/// A random ground value biased to cover every [`ValId`] encoding:
/// inline and table integers, symbols, nested compounds and lists.
fn random_value(rng: &mut SplitMix64, depth: u32) -> Value {
    match rng.next_u64() % if depth == 0 { 3 } else { 5 } {
        0 => {
            // Half inline range, half forced into the node table.
            let v = rng.next_u64() as i64 % (1 << 31);
            Value::Int(if rng.next_u64().is_multiple_of(2) {
                v % (1 << 20)
            } else {
                v | (1 << 30)
            })
        }
        1 => Value::sym(&format!("s{}", rng.next_u64() % 64)),
        2 => Value::sym(&format!("rare_{}", rng.next_u64() % 4096)),
        3 => {
            let n = 1 + (rng.next_u64() % 3) as usize;
            let args = (0..n).map(|_| random_value(rng, depth - 1)).collect();
            Value::app(format!("f{}", rng.next_u64() % 8).as_str().into(), args)
        }
        _ => {
            let n = (rng.next_u64() % 4) as usize;
            Value::list((0..n).map(|_| random_value(rng, depth - 1)).collect())
        }
    }
}

#[test]
fn snapshot_round_trips_every_value_shape_with_stable_ids() {
    let values = vec![
        Value::Int(0),
        Value::Int(-1),
        Value::Int((1 << 29) - 1), // largest inline int
        Value::Int(-(1 << 29)),    // smallest inline int
        Value::Int(1 << 29),       // first table int
        Value::Int(i64::MAX),
        Value::Int(i64::MIN),
        Value::sym("snapshot_shape_sym"),
        Value::app(
            "outer".into(),
            vec![
                Value::app("inner".into(), vec![Value::Int(1 << 40)]),
                Value::sym("x"),
            ],
        ),
        Value::list(vec![Value::Int(1), Value::sym("a"), Value::nil()]),
        Value::nil(),
    ];
    let ids: Vec<ValId> = values.iter().map(ValId::intern).collect();
    let snapshot = ArenaSnapshot::capture();
    let remap = snapshot.install().expect("self-snapshot installs");
    for (v, &id) in values.iter().zip(&ids) {
        assert_eq!(remap.remap(id), Some(id), "id of {v} must be stable");
        assert_eq!(id.value(), *v, "value of {v} survives");
    }
    assert_eq!(remap.remap(ValId::NULL), Some(ValId::NULL));
}

#[test]
fn seeded_property_loop_install_is_identity_in_process() {
    let mut rng = SplitMix64::seed_from_u64(0xA2E7A5EED);
    for round in 0..20 {
        let values: Vec<Value> = (0..50).map(|_| random_value(&mut rng, 3)).collect();
        let ids: Vec<ValId> = values.iter().map(ValId::intern).collect();
        let snapshot = ArenaSnapshot::capture();
        let remap = snapshot.install().expect("self-snapshot installs");
        // Whole rows at once, as checkpoint restore does.
        let row = remap.remap_row(&ids).expect("row remaps");
        assert_eq!(row, ids, "round {round}: ids stable across save/load");
        for (v, &id) in values.iter().zip(&ids) {
            assert_eq!(remap.remap_raw(id.raw()), Some(id), "round {round}");
            assert_eq!(id.value(), *v, "round {round}: {v} decodes");
        }
    }
}

#[test]
fn capture_is_watermark_pinned_and_later_interning_is_harmless() {
    let early = ValId::intern(&Value::app(
        "watermark_probe".into(),
        vec![Value::Int(1 << 35)],
    ));
    let before = ArenaSnapshot::capture();
    // Grow the arena after the capture: fresh symbols and nodes.
    let mut rng = SplitMix64::seed_from_u64(7);
    let late: Vec<ValId> = (0..100)
        .map(|i| {
            ValId::intern(&Value::app(
                format!("late_{i}").as_str().into(),
                vec![random_value(&mut rng, 2)],
            ))
        })
        .collect();
    let after = ArenaSnapshot::capture();
    assert!(after.nodes().len() > before.nodes().len());
    assert!(after.symbols().len() > before.symbols().len());
    // The early snapshot still installs cleanly and still fixes the
    // ids it covers.
    let remap = before.install().expect("older snapshot installs");
    assert_eq!(remap.remap(early), Some(early));
    // The newer snapshot covers everything, old and new.
    let remap = after.install().expect("newer snapshot installs");
    assert_eq!(remap.remap(early), Some(early));
    for &id in &late {
        assert_eq!(remap.remap(id), Some(id));
    }
}
