//! Parallel per-predicate merge determinism, and `Relation::merge`
//! coverage.
//!
//! The engine's insert phase fans the dedup + id-assignment +
//! index-maintenance work of one iteration out over disjoint head
//! relations (see the determinism contract in
//! `crates/engine/src/evaluator.rs`).  That is only sound if the thread
//! count is *invisible in storage*: not just the same fact sets, but the
//! same **row ids**, the same dedup state, and the same index answers,
//! bit for bit.  These tests hold that contract under randomized
//! multi-predicate derivation rounds sized past the parallel-merge work
//! threshold, with `threads ∈ {1, 4}` compared pairwise.

use power_of_magic::engine::{EvalStats, Evaluator, Limits};
use power_of_magic::lang::{parse_program, Program, ValId};
use power_of_magic::workloads::SplitMix64;
use power_of_magic::Database;
use std::collections::BTreeMap;

/// Per-relation fingerprint: watermark, tombstone count, and the exact
/// ascending `(row id, packed row)` sequence.
type RelationFingerprint = (usize, usize, Vec<(usize, Vec<ValId>)>);

/// Full storage-level fingerprint of a database.  Two runs with equal
/// fingerprints assigned every row the same id in the same order — the
/// strongest observable form of merge determinism (`ValId`s are
/// process-global, so packed rows compare exactly).
fn fingerprint(db: &Database) -> BTreeMap<String, RelationFingerprint> {
    db.iter()
        .map(|(pred, rel)| {
            let rows: Vec<(usize, Vec<ValId>)> =
                rel.iter_ids().map(|(id, row)| (id, row.to_vec())).collect();
            (pred.to_string(), (rel.watermark(), rel.tombstones(), rows))
        })
        .collect()
}

fn run_at(program: &Program, edb: &Database, threads: usize) -> (Database, EvalStats) {
    let result = Evaluator::new(program.clone())
        .with_limits(Limits::default().with_threads(threads))
        .run(edb)
        .expect("evaluation succeeds");
    (result.database, result.stats)
}

/// Evaluate at threads=1 and threads=4 and require bit-identical storage:
/// row ids, dedup behavior, and index answers.
fn assert_merge_deterministic(name: &str, program: &Program, edb: &Database) {
    let (db1, stats1) = run_at(program, edb, 1);
    let (mut db4, stats4) = run_at(program, edb, 4);
    assert_eq!(stats1, stats4, "{name}: counters diverged");
    assert_eq!(
        fingerprint(&db1),
        fingerprint(&db4),
        "{name}: row-id assignment diverged"
    );

    // Dedup state: every stored row must be *known* to the parallel-built
    // relation — re-inserting is a no-op and resolves to the same id.
    for (pred, rel1) in db1.iter() {
        let rel4 = db4.relation(pred).expect("fingerprints matched");
        for (id, row) in rel1.iter_ids() {
            assert_eq!(
                rel4.find_id(row),
                Some(id),
                "{name}: dedup of {pred} row {id} diverged"
            );
        }
    }

    // Index answers: build a first-column index on every binary relation
    // of the parallel result and require it to agree with a sequential
    // scan of the sequential result (ascending ids, dead rows excluded).
    let preds: Vec<_> = db1.predicates().cloned().collect();
    for pred in preds {
        let rel1 = db1.relation(&pred).unwrap();
        if rel1.arity() != 2 {
            continue;
        }
        let rel4 = db4.relation_mut_opt(&pred).unwrap();
        rel4.ensure_index(&[0]);
        for (_, row) in rel1.iter_ids() {
            let via_index = rel4.lookup(&[0], &row[..1]).unwrap_or(&[]);
            let via_scan = rel1.scan_select(&[0], &row[..1]);
            assert_eq!(via_index, &via_scan[..], "{name}: {pred} index diverged");
        }
    }
}

/// A multi-headed program whose first iteration alone derives far more
/// rows than the parallel-merge work threshold (4096), across several
/// disjoint head relations — the shape the per-predicate fan-out exists
/// for.  Recursion keeps later (smaller) iterations exercising the
/// sequential fallback in the same run.
#[test]
fn randomized_multi_predicate_rounds_are_thread_invisible() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF_CAFE);
    let program = parse_program(
        "p0(X, Y) :- b0(X, Y).
         p1(X, Y) :- b1(X, Y).
         p2(X, Y) :- b2(X, Y).
         p0(X, Y) :- b0(X, Z), p0(Z, Y).
         p1(X, Y) :- p0(X, Z), b1(Z, Y).
         p2(X, Y) :- p1(X, Z), b2(Z, Y).
         all(X, Y) :- p2(X, Y).",
    )
    .unwrap();
    for round in 0..3 {
        // ~6000 base rows over three predicates: the copy rules alone put
        // the first iteration's insert volume past the 4096-row gate with
        // >= 3 distinct head relations.  The node count stays small so the
        // transitive closure (and debug-mode wall time) stays bounded.
        let nodes = 60 + rng.random_range(0..20);
        let mut edb = Database::new();
        for pred in ["b0", "b1", "b2"] {
            for _ in 0..2000 {
                let a = rng.random_range(0..nodes);
                let b = rng.random_range(0..nodes);
                // Forward edges only: keeps the closure DAG-shaped and
                // debug-mode runtimes bounded.
                let (a, b) = (a.min(b), a.max(b) + 1);
                edb.insert_pair(pred, &format!("n{a}"), &format!("n{b}"));
            }
        }
        assert_merge_deterministic(&format!("round {round}"), &program, &edb);
    }
}

#[test]
fn zero_arity_heads_merge_deterministically() {
    // Arity-0 heads take a dedicated path in the merge (no rows, only an
    // existence bit); they must stay exact under both code paths.
    let program = parse_program(
        "p(X, Y) :- b(X, Y).
         hit() :- p(X, Y), mark(Y).
         q(X) :- p(X, Y), mark(Y).",
    )
    .unwrap();
    let mut edb = Database::new();
    for i in 0..3000 {
        edb.insert_pair("b", &format!("n{i}"), &format!("n{}", i + 1));
    }
    edb.insert(
        power_of_magic::lang::PredName::plain("mark"),
        vec![power_of_magic::lang::Value::sym("n7")],
    );
    assert_merge_deterministic("zero-arity", &program, &edb);
}

// ---------------------------------------------------------------------------
// Relation::merge — the bulk insert the fan-out is built from.
// ---------------------------------------------------------------------------

mod relation_merge {
    use power_of_magic::lang::arena::intern_row;
    use power_of_magic::lang::{PredName, Value};
    use power_of_magic::Database;

    fn pair(a: &str, b: &str) -> Vec<Value> {
        vec![Value::sym(a), Value::sym(b)]
    }

    #[test]
    fn merge_dedups_preserves_ids_and_maintains_indexes() {
        let mut db = Database::new();
        let p = PredName::plain("p");
        for (a, b) in [("a", "b"), ("b", "c")] {
            db.insert(p.clone(), pair(a, b));
        }
        let mut other = Database::new();
        for (a, b) in [("b", "c"), ("c", "d"), ("a", "d")] {
            other.insert(p.clone(), pair(a, b));
        }

        let target = db.relation_mut_opt(&p).unwrap();
        // Index built *before* the merge: merge must maintain it, not
        // leave it stale.
        target.ensure_index(&[0]);
        let added = target.merge(other.relation(&p).unwrap());
        assert_eq!(added, 2, "one duplicate, two new");
        assert_eq!(target.len(), 4);

        // Pre-existing ids are untouched; new rows got the next ids in
        // the other relation's iteration order.
        assert_eq!(target.find_id(&intern_row(&pair("a", "b"))), Some(0));
        assert_eq!(target.id_of(&pair("b", "c")), Some(1));
        assert_eq!(target.id_of(&pair("c", "d")), Some(2));
        assert_eq!(target.id_of(&pair("a", "d")), Some(3));

        // The index answers reflect the merged rows, ascending by id.
        let a_key = intern_row(&[Value::sym("a")]);
        assert_eq!(target.lookup(&[0], &a_key), Some(&[0usize, 3][..]));

        // Dedup after merge: every merged row is a duplicate now.
        for (a, b) in [("b", "c"), ("c", "d"), ("a", "d")] {
            assert!(!target.insert(pair(a, b)));
        }
    }

    #[test]
    fn merge_skips_tombstoned_source_rows() {
        let p = PredName::plain("p");
        let mut src_db = Database::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            src_db.insert(p.clone(), pair(a, b));
        }
        src_db.remove(&p, &pair("b", "c"));

        let mut dst_db = Database::new();
        dst_db.insert(p.clone(), pair("x", "y"));
        let dst = dst_db.relation_mut_opt(&p).unwrap();
        let added = dst.merge(src_db.relation(&p).unwrap());
        assert_eq!(added, 2, "the tombstoned source row must not travel");
        assert!(!dst.contains(&pair("b", "c")));
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.tombstones(), 0);
    }
}
