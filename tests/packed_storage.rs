//! Test suite for the interned packed-row storage layer (PR 3).
//!
//! Three angles:
//!
//! * **Interner round-trips** — every shape of ground value (integers in
//!   and out of the inline range, symbols, nested compounds/lists) must
//!   survive `Value -> ValId -> Value`, and id equality must coincide with
//!   structural equality (hash-consing).
//! * **Randomized storage oracle** — a `Relation` under a random
//!   insert/remove/compact interleaving must behave exactly like a
//!   `HashSet<Vec<Value>>`, including index answers and iteration, with
//!   tombstones and compaction invisible to the set semantics.
//! * **Pinned probe counts** — the packed layout is a pure representation
//!   change: the gms-rewritten ancestor plan must do bit-identical join
//!   work (`join_probes`) to the `Vec<Value>` engine it replaced.  (The
//!   semi-naive pin lives in `tests/engine_equivalence.rs`.)

use power_of_magic::lang::{ValId, Value};
use power_of_magic::storage::arena::{decode_row, intern_row};
use power_of_magic::storage::Relation;
use power_of_magic::workloads::{chain, programs, SplitMix64};
use power_of_magic::{Planner, Strategy};
use std::collections::HashSet;

#[test]
fn interner_round_trips_every_value_shape() {
    let values = vec![
        Value::Int(0),
        Value::Int(-1),
        Value::Int(41),
        Value::Int((1 << 29) - 1), // largest inline int
        Value::Int(-(1 << 29)),    // smallest inline int
        Value::Int(1 << 29),       // first table int
        Value::Int(i64::MAX),      // saturated counting index
        Value::Int(i64::MIN),
        Value::sym("john"),
        Value::sym("a_longer_symbol_name"),
        Value::app("f".into(), vec![Value::sym("a"), Value::Int(3)]),
        Value::app(
            "g".into(),
            vec![Value::app("f".into(), vec![Value::Int(7)]), Value::sym("x")],
        ),
        Value::list(vec![Value::sym("a"), Value::sym("b"), Value::sym("c")]),
        Value::list(vec![Value::list(vec![Value::Int(1)]), Value::nil()]),
        Value::nil(),
    ];
    for v in &values {
        let id = ValId::intern(v);
        assert_eq!(&id.value(), v, "round trip of {v}");
        assert_eq!(ValId::intern(v), id, "re-interning {v} must hit the cons");
        assert_eq!(id.depth(), v.depth(), "cached depth of {v}");
    }
    // Pairwise: distinct values get distinct ids, equal values equal ids.
    for (i, a) in values.iter().enumerate() {
        for (j, b) in values.iter().enumerate() {
            assert_eq!(
                ValId::intern(a) == ValId::intern(b),
                i == j,
                "id equality must mirror structural equality ({a} vs {b})"
            );
        }
    }
    let row = values.clone();
    assert_eq!(decode_row(&intern_row(&row)), row);
}

/// One random value from a small universe (so collisions and re-insertions
/// actually happen).
fn random_row(rng: &mut SplitMix64) -> Vec<Value> {
    let a = Value::Int(rng.random_range(0..12) as i64);
    let b = match rng.random_range(0..3) {
        0 => Value::sym(["x", "y", "z", "w"][rng.random_range(0..4)]),
        1 => Value::Int(rng.random_range(0..8) as i64),
        _ => Value::list(vec![Value::Int(rng.random_range(0..4) as i64)]),
    };
    vec![a, b]
}

#[test]
fn randomized_insert_remove_compact_matches_hashset_oracle() {
    let mut rng = SplitMix64::seed_from_u64(0x9AC3ED);
    for round in 0..30 {
        let mut rel = Relation::new(2);
        rel.ensure_index(&[0]);
        let mut oracle: HashSet<Vec<Value>> = HashSet::new();
        for step in 0..400 {
            match rng.random_range(0..100) {
                // Insert (common).
                0..=54 => {
                    let row = random_row(&mut rng);
                    let fresh = rel.insert(row.clone());
                    assert_eq!(fresh, oracle.insert(row), "round {round} step {step}");
                }
                // Remove a (possibly absent) row.
                55..=84 => {
                    let row = random_row(&mut rng);
                    let present = rel.remove(&row);
                    assert_eq!(present, oracle.remove(&row), "round {round} step {step}");
                }
                // Compact away the tombstones.
                85..=89 => {
                    rel.compact();
                    assert_eq!(rel.tombstones(), 0);
                    assert_eq!(rel.watermark(), rel.len());
                }
                // Point lookups and index answers.
                _ => {
                    let row = random_row(&mut rng);
                    assert_eq!(rel.contains(&row), oracle.contains(&row));
                    let key = intern_row(&row[..1]);
                    let indexed: HashSet<Vec<Value>> = rel
                        .lookup(&[0], &key)
                        .expect("index ensured up front")
                        .iter()
                        .map(|&id| rel.row_values(id))
                        .collect();
                    let expected: HashSet<Vec<Value>> =
                        oracle.iter().filter(|r| r[0] == row[0]).cloned().collect();
                    assert_eq!(indexed, expected, "round {round} step {step}");
                    // The index fallback path must agree with the index.
                    let scanned: HashSet<Vec<Value>> = rel
                        .scan_select(&[0], &key)
                        .into_iter()
                        .map(|id| rel.row_values(id))
                        .collect();
                    assert_eq!(scanned, expected);
                }
            }
            assert_eq!(rel.len(), oracle.len(), "round {round} step {step}");
        }
        // Full-content check at the end of every round.
        let stored: HashSet<Vec<Value>> = rel.iter().collect();
        assert_eq!(stored, oracle, "round {round} final contents");
        // Ids listed by any index stay ascending (the delta-window
        // invariant) and live.
        for (id, _) in rel.iter_ids() {
            assert!(rel.is_live(id));
        }
    }
}

#[test]
fn removal_keeps_watermark_monotone_and_ids_stable() {
    let mut rel = Relation::new(1);
    for i in 0..100i64 {
        rel.insert(vec![Value::Int(i)]);
    }
    let watermark = rel.watermark();
    for i in (0..100i64).step_by(2) {
        assert!(rel.remove(&[Value::Int(i)]));
    }
    // Removal moves neither the watermark nor surviving ids.
    assert_eq!(rel.watermark(), watermark);
    assert_eq!(rel.len(), 50);
    assert_eq!(rel.tombstones(), 50);
    for i in (1..100i64).step_by(2) {
        assert_eq!(rel.id_of(&[Value::Int(i)]), Some(i as usize));
    }
    // New inserts land past the watermark, so delta marks taken before the
    // removal still delimit exactly the new rows.
    rel.insert(vec![Value::Int(1000)]);
    assert_eq!(rel.id_of(&[Value::Int(1000)]), Some(watermark));
}

#[test]
fn gms_join_probes_are_pinned_on_ancestor_chain_64() {
    // The packed-row layout is a representation change only: the magic-set
    // plan must examine exactly the candidate tuples the `Vec<Value>`
    // engine examined (value recorded by the PR 2 engine).
    let program = programs::ancestor();
    let query = programs::ancestor_query("n0");
    let db = chain(64);
    let result = Planner::new(Strategy::MagicSets)
        .evaluate(&program, &query, &db)
        .unwrap();
    assert_eq!(result.answers.len(), 64);
    assert_eq!(result.stats.facts_derived, 2145);
    assert_eq!(
        result.stats.join_probes, 14817,
        "gms join probes moved on ancestor_chain(64): the packed layout \
         must not change join semantics"
    );
}
