//! Scheduler test coverage: stratum order against the dependency graph on
//! randomized programs, and the parallel determinism contract — `threads=4`
//! must produce answers, `rule_firings`, and summed `join_probes`
//! bit-identical to `threads=1` on the full oracle suite, including
//! gms-rewritten programs and incremental insert/retract maintenance.

use power_of_magic::engine::{EvalStats, Evaluator, IterationScheme, Limits};
use power_of_magic::incr::MaterializedView;
use power_of_magic::lang::schedule::Schedule;
use power_of_magic::lang::{parse_program, DependencyGraph, Fact, PredName, Program, Value};
use power_of_magic::workloads::{
    chain, cycle, random_dag, same_generation_grid, SgConfig, SplitMix64,
};
use power_of_magic::{Database, Planner, Strategy};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Stratum order on randomized programs.
// ---------------------------------------------------------------------------

/// Generate a random program over predicates `p0..p{np}` (derived
/// candidates) and `b0..b{nb}` (base), with `rules` rules of 1–3 body
/// atoms.  Deterministic per seed (repo convention: seeded `SplitMix64`
/// loops stand in for proptest).
fn random_program(rng: &mut SplitMix64, np: usize, nb: usize, rules: usize) -> Program {
    let mut src = String::new();
    for _ in 0..rules {
        let head = rng.random_range(0..np);
        let body_len = rng.random_range(1..4);
        let mut body = Vec::new();
        for _ in 0..body_len {
            if rng.random_ratio(1, 3) {
                body.push(format!("b{}(X, Y)", rng.random_range(0..nb)));
            } else {
                body.push(format!("p{}(X, Y)", rng.random_range(0..np)));
            }
        }
        src.push_str(&format!("p{head}(X, Y) :- {}.\n", body.join(", ")));
    }
    parse_program(&src).expect("generated program parses")
}

#[test]
fn stratum_order_respects_the_dependency_graph_on_random_programs() {
    let mut rng = SplitMix64::seed_from_u64(0x5CED);
    for round in 0..40 {
        let program = random_program(&mut rng, 5, 3, 8);
        let schedule = Schedule::build(&program);
        let graph = DependencyGraph::build(&program);

        // Every rule is scheduled exactly once, in its head's stratum.
        let mut seen = BTreeSet::new();
        for (s, stratum) in schedule.strata().iter().enumerate() {
            for &r in &stratum.rules {
                assert!(seen.insert(r), "round {round}: rule {r} scheduled twice");
                assert_eq!(schedule.stratum_of_rule(r), s);
                assert!(stratum.preds.contains(&program.rules[r].head.pred));
            }
            // Groups partition the stratum's rules.
            let grouped: Vec<usize> = {
                let mut g: Vec<usize> = stratum.groups.iter().flatten().copied().collect();
                g.sort_unstable();
                g
            };
            assert_eq!(grouped, stratum.rules, "round {round}: groups != rules");
        }
        assert_eq!(seen.len(), program.rules.len());

        // Dependency order: a derived body predicate's stratum never
        // exceeds the head's stratum, and equals it only within one SCC
        // (i.e. when the head is reachable back from the body predicate).
        for (r, rule) in program.rules.iter().enumerate() {
            let head_stratum = schedule.stratum_of_rule(r);
            for atom in &rule.body {
                let Some(s) = schedule.stratum_of_pred(&atom.pred) else {
                    continue; // base predicate
                };
                assert!(
                    s <= head_stratum,
                    "round {round}: body {} (stratum {s}) above head {} (stratum {head_stratum})",
                    atom.pred,
                    rule.head.pred
                );
                if s == head_stratum {
                    assert!(
                        graph.reachable_from(&atom.pred).contains(&rule.head.pred),
                        "round {round}: same stratum without mutual recursion"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parallel determinism: threads=4 ≡ threads=1, bit for bit.
// ---------------------------------------------------------------------------

fn fact_set(db: &Database) -> BTreeSet<String> {
    db.facts().map(|f| f.to_string()).collect()
}

/// Run `program` over `edb` at the given thread count.
fn run_at(
    program: &Program,
    edb: &Database,
    threads: usize,
    scheme: IterationScheme,
) -> (BTreeSet<String>, EvalStats) {
    let result = Evaluator::new(program.clone())
        .with_scheme(scheme)
        .with_limits(Limits::default().with_threads(threads))
        .run(edb)
        .expect("evaluation succeeds");
    (fact_set(&result.database), result.stats)
}

fn assert_threads_agree(name: &str, program: &Program, edb: &Database, scheme: IterationScheme) {
    let (facts1, stats1) = run_at(program, edb, 1, scheme);
    let (facts4, stats4) = run_at(program, edb, 4, scheme);
    assert_eq!(facts1, facts4, "{name}: fact sets diverged");
    assert_eq!(
        stats1, stats4,
        "{name}: stats diverged between threads=1 and threads=4"
    );
}

#[test]
fn parallel_matches_single_threaded_on_random_dags() {
    let mut rng = SplitMix64::seed_from_u64(0xDA7A);
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .unwrap();
    for _ in 0..6 {
        let nodes = rng.random_range(8..40);
        let seed = rng.next_u64();
        let db = random_dag(nodes, nodes * 3, seed);
        assert_threads_agree(
            &format!("dag({nodes}, seed {seed})"),
            &program,
            &db,
            IterationScheme::SemiNaive,
        );
        assert_threads_agree(
            &format!("naive dag({nodes})"),
            &program,
            &db,
            IterationScheme::Naive,
        );
    }
}

#[test]
fn parallel_matches_single_threaded_on_long_chains_with_sharding() {
    // A chain long enough that the occurrence-0 sharding actually kicks in
    // (the lead range exceeds the shard threshold).
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .unwrap();
    assert_threads_agree(
        "chain(600)",
        &program,
        &chain(600),
        IterationScheme::SemiNaive,
    );
    // Cyclic data exercises saturation (every delta eventually empty).
    assert_threads_agree(
        "cycle(96)",
        &program,
        &cycle(96),
        IterationScheme::SemiNaive,
    );
}

#[test]
fn parallel_matches_single_threaded_on_gms_rewritten_programs() {
    // The full planner pipeline at both thread counts: answers AND engine
    // counters must agree on magic-rewritten (multi-stratum) programs.
    let scenarios: Vec<(&str, Program, power_of_magic::Query, Database)> = vec![
        (
            "gms ancestor chain(512)",
            parse_program(
                "anc(X, Y) :- par(X, Y).
                 anc(X, Y) :- par(X, Z), anc(Z, Y).",
            )
            .unwrap(),
            power_of_magic::parse_query("anc(n0, Y)").unwrap(),
            chain(512),
        ),
        (
            "gms same-generation 4x6",
            parse_program(
                "sg(X, Y) :- flat(X, Y).
                 sg(X, Y) :- up(X, Z1), sg(Z1, Z2), flat(Z2, Z3), sg(Z3, Z4), down(Z4, Y).",
            )
            .unwrap(),
            power_of_magic::parse_query("sg(l0c0, Y)").unwrap(),
            same_generation_grid(SgConfig {
                depth: 4,
                width: 6,
                flat_everywhere: true,
            }),
        ),
    ];
    for (name, program, query, db) in &scenarios {
        for strategy in [Strategy::MagicSets, Strategy::SupplementaryMagicSets] {
            let at = |threads: usize| {
                Planner::new(strategy)
                    .with_limits(Limits::default().with_threads(threads))
                    .evaluate(program, query, db)
                    .expect("strategy evaluates")
            };
            let one = at(1);
            let four = at(4);
            assert_eq!(one.answers, four.answers, "{name} {strategy}: answers");
            assert_eq!(one.stats, four.stats, "{name} {strategy}: counters");
        }
    }
}

#[test]
fn parallel_matches_single_threaded_under_incremental_maintenance() {
    // Materialize a gms view at both thread counts, stream the same
    // insert/retract updates, and require identical databases, support
    // counts and cumulative stats — the incremental-retract leg of the
    // oracle suite.
    let program = parse_program(
        "anc(X, Y) :- par(X, Y).
         anc(X, Y) :- par(X, Z), anc(Z, Y).",
    )
    .unwrap();
    let query = power_of_magic::parse_query("anc(n0, Y)").unwrap();
    let db = chain(200);
    let plan = Planner::new(Strategy::MagicSets)
        .plan(&program, &query)
        .unwrap();

    let edge = |i: usize, j: usize| {
        Fact::plain(
            "par",
            vec![Value::sym(&format!("n{i}")), Value::sym(&format!("n{j}"))],
        )
    };
    let run = |threads: usize| {
        let limits = Limits::default().with_threads(threads);
        let mut view = MaterializedView::with_limits(&plan.program, &db, limits).unwrap();
        view.insert(&edge(200, 201)).unwrap();
        view.retract(&edge(199, 200)).unwrap();
        view.insert(&edge(50, 199)).unwrap();
        view.retract(&edge(50, 199)).unwrap();
        (fact_set(view.database()), view.stats().clone())
    };
    let (facts1, stats1) = run(1);
    let (facts4, stats4) = run(4);
    assert_eq!(
        facts1, facts4,
        "incremental maintenance: fact sets diverged"
    );
    assert_eq!(stats1, stats4, "incremental maintenance: stats diverged");
}

#[test]
fn stratum_retirement_matches_the_unscheduled_oracle() {
    // A three-stratum pipeline (base -> sg -> p -> q): stratified
    // retirement must not change the least model or drop late derivations.
    let program = parse_program(
        "sg(X, Y) :- flat(X, Y).
         sg(X, Y) :- up(X, Z), sg(Z, W), down(W, Y).
         p(X, Y) :- sg(X, Y).
         p(X, Y) :- sg(X, Z), p(Z, Y).
         q(X) :- p(X, Y), mark(Y).",
    )
    .unwrap();
    let mut db = same_generation_grid(SgConfig {
        depth: 3,
        width: 4,
        flat_everywhere: true,
    });
    db.insert(PredName::plain("mark"), vec![Value::sym("l0c1")]);
    // Oracle: naive evaluation (no deltas, no retirement).
    let (naive_facts, _) = run_at(&program, &db, 1, IterationScheme::Naive);
    let (semi1, stats1) = run_at(&program, &db, 1, IterationScheme::SemiNaive);
    let (semi4, stats4) = run_at(&program, &db, 4, IterationScheme::SemiNaive);
    assert_eq!(naive_facts, semi1, "stratified semi-naive != naive oracle");
    assert_eq!(semi1, semi4);
    assert_eq!(stats1, stats4);
    // The schedule really is multi-stratum.
    let schedule = Schedule::build(&program);
    assert!(
        schedule.len() >= 3,
        "expected >= 3 strata, got {}",
        schedule.len()
    );
}
