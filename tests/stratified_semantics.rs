//! Stratified-semantics property suite.
//!
//! Correctness oracle: the *perfect model* of a stratified program,
//! computed by the dumbest correct evaluator imaginable — enumerate every
//! assignment of rule variables over the active domain, check positive
//! atoms by membership and negated atoms by absence against the finished
//! lower strata, fold aggregates by brute-force grouping — must equal
//! what the optimized engine (slot-compiled joins, semi-naive deltas,
//! anti-joins, stratum-boundary aggregate folds) derives.  The suite
//! drives seeded randomized stratified programs (negation + aggregates
//! over templates with known-safe shapes) through both, mirroring the
//! seeded-SplitMix64 discipline of `tests/incremental.rs`, plus
//! gms-rewritten positive fragments checked against the same oracle's
//! answer projection.

use power_of_magic::engine::Evaluator;
use power_of_magic::lang::{Atom, Fact, PredName, Program, Rule, Term, Value};
use power_of_magic::workloads::SplitMix64;
use power_of_magic::{Database, Planner, Query, Strategy};
use std::collections::{BTreeMap, BTreeSet};

/// A derived fact set keyed by predicate display name.
type Model = BTreeMap<String, BTreeSet<Vec<Value>>>;

/// Ground a rule term under a binding (generated rules use only
/// variables and constants — no function terms).
fn ground(term: &Term, binding: &BTreeMap<String, Value>) -> Value {
    match term {
        Term::Var(v) => binding[v.name()].clone(),
        Term::Int(n) => Value::int(*n),
        Term::Sym(s) => Value::sym(s.as_str()),
        other => panic!("oracle rules have no function terms: {other}"),
    }
}

/// All assignments of `vars` over `domain`, visited depth-first.
fn for_each_assignment(
    vars: &[String],
    domain: &[Value],
    binding: &mut BTreeMap<String, Value>,
    visit: &mut impl FnMut(&BTreeMap<String, Value>),
) {
    match vars.split_first() {
        None => visit(binding),
        Some((var, rest)) => {
            for value in domain {
                binding.insert(var.clone(), value.clone());
                for_each_assignment(rest, domain, binding, visit);
            }
            binding.remove(var);
        }
    }
}

/// True iff the rule body holds under the binding: every positive atom's
/// grounded row is present, every negated atom's absent.
fn body_holds(rule: &Rule, model: &Model, binding: &BTreeMap<String, Value>) -> bool {
    let row_of =
        |atom: &Atom| -> Vec<Value> { atom.terms.iter().map(|t| ground(t, binding)).collect() };
    let present = |atom: &Atom| {
        model
            .get(&atom.pred.to_string())
            .is_some_and(|rows| rows.contains(&row_of(atom)))
    };
    rule.body.iter().all(present) && !rule.negated.iter().any(present)
}

/// The distinct values appearing anywhere in the model — the active
/// domain brute-force enumeration ranges over.
fn active_domain(model: &Model) -> Vec<Value> {
    let mut domain: BTreeSet<Value> = BTreeSet::new();
    for rows in model.values() {
        for row in rows {
            domain.extend(row.iter().cloned());
        }
    }
    domain.into_iter().collect()
}

/// The variables a rule's enumeration must range over: everything bound
/// by the positive body (generated rules are safe, so head, negated and
/// aggregated variables are all among these).
fn body_vars(rule: &Rule) -> Vec<String> {
    let mut vars: Vec<String> = Vec::new();
    for atom in &rule.body {
        for v in atom.vars() {
            if !vars.contains(&v.name().to_string()) {
                vars.push(v.name().to_string());
            }
        }
    }
    vars
}

/// One brute-force pass of a plain rule; returns true if a new fact landed.
fn fire_plain(rule: &Rule, model: &mut Model) -> bool {
    let vars = body_vars(rule);
    let domain = active_domain(model);
    let mut derived: Vec<Vec<Value>> = Vec::new();
    for_each_assignment(&vars, &domain, &mut BTreeMap::new(), &mut |binding| {
        if body_holds(rule, model, binding) {
            derived.push(rule.head.terms.iter().map(|t| ground(t, binding)).collect());
        }
    });
    let rows = model.entry(rule.head.pred.to_string()).or_default();
    let before = rows.len();
    rows.extend(derived);
    rows.len() != before
}

/// Brute-force an aggregate rule: group the satisfying assignments by the
/// non-aggregate head positions, fold the distinct aggregated values.
fn fire_aggregate(rule: &Rule, model: &mut Model) {
    use power_of_magic::lang::AggFunc;
    let agg = rule.aggregate.as_ref().expect("aggregate rule");
    let vars = body_vars(rule);
    let domain = active_domain(model);
    let mut groups: BTreeMap<Vec<Value>, BTreeSet<Value>> = BTreeMap::new();
    for_each_assignment(&vars, &domain, &mut BTreeMap::new(), &mut |binding| {
        if body_holds(rule, model, binding) {
            let key: Vec<Value> = rule
                .head
                .terms
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != agg.position)
                .map(|(_, t)| ground(t, binding))
                .collect();
            groups
                .entry(key)
                .or_default()
                .insert(binding[agg.var.name()].clone());
        }
    });
    let as_int = |v: &Value| match v {
        Value::Int(n) => *n,
        other => panic!("aggregated non-integer {other}"),
    };
    let rows = model.entry(rule.head.pred.to_string()).or_default();
    for (key, values) in groups {
        let folded = match agg.func {
            AggFunc::Count => values.len() as i64,
            AggFunc::Sum => values.iter().map(as_int).sum(),
            AggFunc::Min => values.iter().map(as_int).min().unwrap(),
            AggFunc::Max => values.iter().map(as_int).max().unwrap(),
        };
        let mut row = Vec::new();
        let mut key = key.into_iter();
        for i in 0..rule.head.terms.len() {
            if i == agg.position {
                row.push(Value::int(folded));
            } else {
                row.push(key.next().unwrap());
            }
        }
        rows.insert(row);
    }
}

/// The perfect model of a layered stratified program: each layer's plain
/// rules iterate to fixpoint against the finished lower layers, then the
/// layer's aggregate rules fold once at the boundary.
fn perfect_model(layers: &[Vec<Rule>], edb: &Database) -> BTreeSet<Fact> {
    let mut model: Model = BTreeMap::new();
    for fact in edb.facts() {
        model
            .entry(fact.pred.to_string())
            .or_default()
            .insert(fact.values.clone());
    }
    let mut derived_preds: BTreeSet<String> = BTreeSet::new();
    for layer in layers {
        for rule in layer {
            derived_preds.insert(rule.head.pred.to_string());
        }
        loop {
            let mut changed = false;
            for rule in layer.iter().filter(|r| r.aggregate.is_none()) {
                changed |= fire_plain(rule, &mut model);
            }
            if !changed {
                break;
            }
        }
        for rule in layer.iter().filter(|r| r.aggregate.is_some()) {
            fire_aggregate(rule, &mut model);
        }
    }
    let mut facts = BTreeSet::new();
    for (pred, rows) in &model {
        if derived_preds.contains(pred) {
            for row in rows {
                facts.insert(Fact::plain(pred, row.clone()));
            }
        }
    }
    facts
}

/// What the engine derives for the same program, restricted to the
/// derived predicates.
fn engine_model(program: &Program, edb: &Database) -> BTreeSet<Fact> {
    let result = Evaluator::new(program.clone())
        .run(edb)
        .expect("engine evaluates the stratified program");
    let derived: BTreeSet<PredName> = program.rules.iter().map(|r| r.head.pred.clone()).collect();
    result
        .database
        .facts()
        .filter(|f| derived.contains(&f.pred))
        .collect()
}

// ---------------------------------------------------------------------------
// Randomized stratified program generator.
// ---------------------------------------------------------------------------

/// A usable predicate: name, arity, and whether its last column is
/// integer-valued (the columns `sum`/`min`/`max` may fold).
#[derive(Clone)]
struct PredInfo {
    name: String,
    arity: usize,
    int_col: bool,
}

fn pred(name: &str, arity: usize, int_col: bool) -> PredInfo {
    PredInfo {
        name: name.to_string(),
        arity,
        int_col,
    }
}

fn pick<'a>(rng: &mut SplitMix64, items: &'a [PredInfo]) -> &'a PredInfo {
    &items[rng.random_range(0..items.len())]
}

/// A random stratified program over a random EDB: 2–4 derived layers of
/// safe template rules (copies, joins, projections, positive recursion,
/// negation of strictly-lower predicates, boundary aggregates), returned
/// both layered (for the oracle) and flat (for the engine).  With
/// `positive_only`, the guarded templates are replaced by positive ones —
/// the shape the gms-rewrite leg needs.
fn random_stratified(
    rng: &mut SplitMix64,
    positive_only: bool,
) -> (Vec<Vec<Rule>>, Program, Database) {
    let n = 6 + rng.random_range(0..3);
    let mut edb = Database::new();
    let constant = |i: usize| format!("c{i}");
    for i in 0..n {
        edb.insert(PredName::plain("node"), vec![Value::sym(&constant(i))]);
        edb.insert(
            PredName::plain("score"),
            vec![
                Value::sym(&constant(i)),
                Value::int(1 + rng.random_range(0..40) as i64),
            ],
        );
    }
    for _ in 0..n + rng.random_range(0..n) {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        edb.insert_pair("edge", &constant(a), &constant(b));
    }

    let binaries_of = |preds: &[PredInfo]| -> Vec<PredInfo> {
        preds.iter().filter(|p| p.arity == 2).cloned().collect()
    };
    let unaries_of = |preds: &[PredInfo]| -> Vec<PredInfo> {
        preds.iter().filter(|p| p.arity == 1).cloned().collect()
    };
    let int_cols_of = |preds: &[PredInfo]| -> Vec<PredInfo> {
        preds
            .iter()
            .filter(|p| p.arity == 2 && p.int_col)
            .cloned()
            .collect()
    };
    let var = Term::var;
    let atom1 = |p: &PredInfo, x: &str| Atom::plain(&p.name, vec![var(x)]);
    let atom2 = |p: &PredInfo, x: &str, y: &str| Atom::plain(&p.name, vec![var(x), var(y)]);

    let mut lower = vec![
        pred("edge", 2, false),
        pred("node", 1, false),
        pred("score", 2, true),
    ];
    let mut layers: Vec<Vec<Rule>> = Vec::new();
    let mut serial = 0usize;
    for _ in 0..2 + rng.random_range(0..3) {
        let mut layer: Vec<Rule> = Vec::new();
        let mut born: Vec<PredInfo> = Vec::new();
        for _ in 0..1 + rng.random_range(0..2) {
            let name = format!("p{serial}");
            serial += 1;
            let binaries = binaries_of(&lower);
            let unaries = unaries_of(&lower);
            let int_cols = int_cols_of(&lower);
            let template = match rng.random_range(0..7) {
                // The guarded templates (negation at 2/3, aggregate at 5)
                // degrade to their positive cousins in positive-only mode.
                2 if positive_only => 1,
                3 if positive_only => 0,
                5 if positive_only => 6,
                t => t,
            };
            match template {
                // q(X, Y) :- a(X, Z), b(Z, Y).
                0 => {
                    layer.push(Rule::new(
                        Atom::plain(&name, vec![var("X"), var("Y")]),
                        vec![
                            atom2(pick(rng, &binaries), "X", "Z"),
                            atom2(pick(rng, &binaries), "Z", "Y"),
                        ],
                    ));
                    born.push(pred(&name, 2, false));
                }
                // q(X) :- a(X, Y).  (projection)
                1 => {
                    layer.push(Rule::new(
                        Atom::plain(&name, vec![var("X")]),
                        vec![atom2(pick(rng, &binaries), "X", "Y")],
                    ));
                    born.push(pred(&name, 1, false));
                }
                // q(X) :- node(X), not a(X).  (negation, lower stratum)
                2 if !unaries.is_empty() => {
                    layer.push(
                        Rule::new(
                            Atom::plain(&name, vec![var("X")]),
                            vec![atom1(&pred("node", 1, false), "X")],
                        )
                        .with_negated(vec![atom1(pick(rng, &unaries), "X")]),
                    );
                    born.push(pred(&name, 1, false));
                }
                // q(X, Y) :- a(X, Y), not b(X).  (guarded copy)
                3 if !unaries.is_empty() => {
                    layer.push(
                        Rule::new(
                            Atom::plain(&name, vec![var("X"), var("Y")]),
                            vec![atom2(pick(rng, &binaries), "X", "Y")],
                        )
                        .with_negated(vec![atom1(pick(rng, &unaries), "X")]),
                    );
                    born.push(pred(&name, 2, false));
                }
                // Positive recursion: base copy + transitive step.
                4 => {
                    let step = pick(rng, &binaries).clone();
                    let this = pred(&name, 2, false);
                    layer.push(Rule::new(
                        Atom::plain(&name, vec![var("X"), var("Y")]),
                        vec![atom2(&step, "X", "Y")],
                    ));
                    layer.push(Rule::new(
                        Atom::plain(&name, vec![var("X"), var("Y")]),
                        vec![atom2(&this, "X", "Z"), atom2(&step, "Z", "Y")],
                    ));
                    born.push(this);
                }
                // q(X, f<N>) :- w(X, N).  (boundary aggregate, sole rule)
                5 if !int_cols.is_empty() => {
                    use power_of_magic::lang::{AggFunc, Aggregate, Variable};
                    let funcs = [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Count];
                    let func = funcs[rng.random_range(0..funcs.len())];
                    layer.push(
                        Rule::new(
                            Atom::plain(&name, vec![var("X"), var("N")]),
                            vec![atom2(pick(rng, &int_cols), "X", "N")],
                        )
                        .with_aggregate(Aggregate {
                            func,
                            var: Variable::new("N"),
                            position: 1,
                        }),
                    );
                    born.push(pred(&name, 2, true));
                }
                // q(X, N) :- a(X, Y), score(Y, N).  (int-column join)
                _ => {
                    layer.push(Rule::new(
                        Atom::plain(&name, vec![var("X"), var("N")]),
                        vec![
                            atom2(pick(rng, &binaries), "X", "Y"),
                            atom2(&pred("score", 2, true), "Y", "N"),
                        ],
                    ));
                    born.push(pred(&name, 2, true));
                }
            }
        }
        lower.extend(born);
        layers.push(layer);
    }
    let program = Program::from_rules(layers.iter().flatten().cloned().collect());
    program.validate().expect("generated program is safe");
    (layers, program, edb)
}

#[test]
fn randomized_stratified_programs_match_the_perfect_model() {
    let mut rng = SplitMix64::seed_from_u64(0x57AB_51F1);
    for round in 0..12 {
        let seed = rng.next_u64();
        let mut round_rng = SplitMix64::seed_from_u64(seed);
        let (layers, program, edb) = random_stratified(&mut round_rng, false);
        let oracle = perfect_model(&layers, &edb);
        let engine = engine_model(&program, &edb);
        assert_eq!(
            engine, oracle,
            "round {round} (seed {seed:#x}): engine diverged from the perfect model\n{program}"
        );
    }
}

#[test]
fn negation_heavy_rounds_are_nondegenerate() {
    // At least one seeded round must actually derive through a negated
    // atom (a complement row that survives), or the suite is vacuous.
    let mut rng = SplitMix64::seed_from_u64(0x57AB_51F1);
    let mut negated_derivations = 0usize;
    for _ in 0..12 {
        let seed = rng.next_u64();
        let mut round_rng = SplitMix64::seed_from_u64(seed);
        let (layers, program, edb) = random_stratified(&mut round_rng, false);
        let guarded: BTreeSet<String> = program
            .rules
            .iter()
            .filter(|r| !r.negated.is_empty())
            .map(|r| r.head.pred.to_string())
            .collect();
        if guarded.is_empty() {
            continue;
        }
        negated_derivations += perfect_model(&layers, &edb)
            .iter()
            .filter(|f| guarded.contains(&f.pred.to_string()))
            .count();
    }
    assert!(
        negated_derivations > 0,
        "no seeded round derived anything through negation"
    );
}

/// A random *positive* fragment (joins, projections, recursion — no
/// guards), for the gms leg: a bound-first query on the last binary
/// predicate, answered by the magic-rewritten plan, must project exactly
/// the oracle's rows.
#[test]
fn gms_rewritten_positive_fragments_match_the_oracle_projection() {
    let mut rng = SplitMix64::seed_from_u64(0x6A51C);
    let mut checked = 0usize;
    for round in 0..12 {
        let seed = rng.next_u64();
        let mut round_rng = SplitMix64::seed_from_u64(seed);
        let (layers, program, edb) = random_stratified(&mut round_rng, true);
        assert!(
            !program.rules.iter().any(Rule::is_guarded),
            "positive-only generation produced a guard"
        );
        let Some(target) = program
            .rules
            .iter()
            .rev()
            .map(|r| &r.head)
            .find(|h| h.terms.len() == 2)
        else {
            continue;
        };
        let query = Query::plain(
            &target.pred.to_string(),
            vec![Term::sym("c0"), Term::var("Y")],
        );
        let result = Planner::new(Strategy::MagicSets)
            .evaluate(&program, &query, &edb)
            .expect("gms evaluates the positive fragment");
        let expected: BTreeSet<Vec<Value>> = perfect_model(&layers, &edb)
            .into_iter()
            .filter(|f| f.pred == target.pred && f.values[0] == Value::sym("c0"))
            .map(|f| vec![f.values[1].clone()])
            .collect();
        assert_eq!(
            result.answers, expected,
            "round {round} (seed {seed:#x}): gms answers diverged\n{program}"
        );
        checked += 1;
    }
    assert!(
        checked >= 6,
        "too few positive fragments ({checked}) to trust the gms leg"
    );
}
