//! Semantic reproduction of the paper's Appendix: every rewriting strategy
//! computes exactly the same answers as the bottom-up baseline on all four
//! benchmark problems (Theorems 3.1, 4.1, 5.1, 6.1, 7.1 and the soundness of
//! the Section 8 semijoin optimization).

use power_of_magic::engine::{answers::query_answers, Evaluator};
use power_of_magic::magic::adorn::adorn;
use power_of_magic::magic::planner::{Planner, Strategy};
use power_of_magic::magic::sip_builder::SipStrategy;
use power_of_magic::workloads::{
    binary_tree, chain, list_term, nested_sg_extras, programs, reverse_database,
    same_generation_grid, SgConfig,
};
use power_of_magic::Database;
use std::collections::BTreeSet;

fn answers_for(
    strategy: Strategy,
    program: &power_of_magic::Program,
    query: &power_of_magic::Query,
    db: &Database,
) -> BTreeSet<Vec<power_of_magic::lang::Value>> {
    Planner::new(strategy)
        .evaluate(program, query, db)
        .unwrap_or_else(|e| panic!("{strategy} failed: {e}"))
        .answers
}

#[test]
fn ancestor_all_strategies_agree_on_chain_and_tree() {
    let program = programs::ancestor();
    for db in [chain(40), binary_tree(6)] {
        let query = programs::ancestor_query("n0");
        let reference = answers_for(Strategy::SemiNaiveBottomUp, &program, &query, &db);
        assert!(!reference.is_empty());
        for strategy in Strategy::ALL {
            assert_eq!(
                answers_for(strategy, &program, &query, &db),
                reference,
                "{strategy} disagrees on ancestor"
            );
        }
    }
}

#[test]
fn ancestor_inner_node_query() {
    // A query bound to an interior node: the rewrites must not lose answers
    // reachable only through deep recursion.
    let program = programs::ancestor();
    let db = chain(30);
    let query = programs::ancestor_query("n17");
    let reference = answers_for(Strategy::SemiNaiveBottomUp, &program, &query, &db);
    assert_eq!(reference.len(), 13);
    for strategy in Strategy::ALL {
        assert_eq!(answers_for(strategy, &program, &query, &db), reference);
    }
}

#[test]
fn nonlinear_ancestor_magic_strategies_agree() {
    // The counting strategies diverge on this program (Theorem 10.3), so
    // only the magic-set strategies are compared.
    let program = programs::nonlinear_ancestor();
    let db = chain(25);
    let query = programs::ancestor_query("n5");
    let reference = answers_for(Strategy::SemiNaiveBottomUp, &program, &query, &db);
    assert_eq!(reference.len(), 20);
    for strategy in [
        Strategy::NaiveBottomUp,
        Strategy::MagicSets,
        Strategy::SupplementaryMagicSets,
    ] {
        assert_eq!(answers_for(strategy, &program, &query, &db), reference);
    }
}

#[test]
fn same_generation_all_strategies_agree() {
    let program = programs::same_generation();
    let db = same_generation_grid(SgConfig {
        depth: 3,
        width: 6,
        flat_everywhere: true,
    });
    let query = programs::same_generation_query("l0c2");
    let reference = answers_for(Strategy::SemiNaiveBottomUp, &program, &query, &db);
    assert!(!reference.is_empty());
    for strategy in Strategy::ALL {
        assert_eq!(
            answers_for(strategy, &program, &query, &db),
            reference,
            "{strategy} disagrees on same-generation"
        );
    }
}

#[test]
fn nested_same_generation_magic_strategies_agree() {
    // The counting strategies diverge on this workload: the same-generation
    // relation on a level is cyclic, so derivation paths (and hence counting
    // indexes) grow without bound — a data-dependent instance of the
    // divergence discussed in Section 10.  Only the magic-set strategies and
    // the baselines are compared here; the divergence itself is asserted in
    // `tests/safety_integration.rs`.
    let program = programs::nested_same_generation();
    let cfg = SgConfig {
        depth: 2,
        width: 6,
        flat_everywhere: true,
    };
    let mut db = same_generation_grid(cfg);
    nested_sg_extras(cfg, &mut db);
    let query = programs::nested_sg_query("l0c0");
    let reference = answers_for(Strategy::SemiNaiveBottomUp, &program, &query, &db);
    assert!(!reference.is_empty());
    for strategy in [
        Strategy::NaiveBottomUp,
        Strategy::MagicSets,
        Strategy::SupplementaryMagicSets,
    ] {
        assert_eq!(
            answers_for(strategy, &program, &query, &db),
            reference,
            "{strategy} disagrees on nested same-generation"
        );
    }
}

#[test]
fn list_reverse_rewrites_compute_the_reversed_list() {
    let program = programs::list_reverse();
    let db = reverse_database();
    for n in [0usize, 1, 5, 12] {
        let query = programs::reverse_query(list_term(n));
        let expected: Vec<String> = (0..n).rev().map(|i| format!("e{i}")).collect();
        for strategy in Strategy::REWRITES {
            let answers = answers_for(strategy, &program, &query, &db);
            assert_eq!(answers.len(), 1, "{strategy} on reverse({n})");
            let answer = answers.iter().next().unwrap();
            let items: Vec<String> = answer[0]
                .as_list()
                .expect("answer is a list")
                .iter()
                .map(|v| v.to_string())
                .collect();
            assert_eq!(items, expected, "{strategy} on reverse({n})");
        }
    }
}

#[test]
fn theorem_3_1_adorned_program_is_equivalent() {
    // Evaluating the adorned program bottom-up computes, for each adorned
    // predicate, the same relation as the original predicate.
    let program = programs::same_generation();
    let query = programs::same_generation_query("l0c0");
    let db = same_generation_grid(SgConfig {
        depth: 2,
        width: 5,
        flat_everywhere: true,
    });
    let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();

    let original = Evaluator::new(program).run(&db).unwrap();
    let adorned_result = Evaluator::new(adorned.to_program()).run(&db).unwrap();

    let q_plain = power_of_magic::parse_query("sg(X, Y)").unwrap();
    let original_sg = query_answers(&original.database, &q_plain);
    let adorned_sg = {
        use power_of_magic::lang::{Atom, PredName, Term};
        let atom = Atom::new(
            PredName::Adorned {
                base: "sg".into(),
                adornment: "bf".parse().unwrap(),
            },
            vec![Term::var("X"), Term::var("Y")],
        );
        power_of_magic::engine::answers::project_answers(
            &adorned_result.database,
            &atom,
            &[
                power_of_magic::lang::Variable::new("X"),
                power_of_magic::lang::Variable::new("Y"),
            ],
        )
    };
    assert_eq!(original_sg, adorned_sg);
}

#[test]
fn fully_bound_query_acts_as_boolean_test() {
    // anc(n0, n7)? — a query with both arguments bound exercises the bb
    // adornment path end to end.
    let program = programs::ancestor();
    let db = chain(10);
    let query = power_of_magic::parse_query("a(n0, n7)").unwrap();
    for strategy in [
        Strategy::SemiNaiveBottomUp,
        Strategy::MagicSets,
        Strategy::SupplementaryMagicSets,
    ] {
        let answers = answers_for(strategy, &program, &query, &db);
        assert_eq!(answers.len(), 1, "{strategy}: anc(n0, n7) should hold");
    }
    let negative = power_of_magic::parse_query("a(n7, n0)").unwrap();
    for strategy in [
        Strategy::SemiNaiveBottomUp,
        Strategy::MagicSets,
        Strategy::SupplementaryMagicSets,
    ] {
        let answers = answers_for(strategy, &program, &negative, &db);
        assert!(
            answers.is_empty(),
            "{strategy}: anc(n7, n0) should not hold"
        );
    }
}

#[test]
fn all_free_query_falls_back_to_full_relation() {
    // With no bound argument the rewrites cannot restrict anything, but they
    // must still be correct.
    let program = programs::ancestor();
    let db = chain(12);
    let query = power_of_magic::parse_query("a(X, Y)").unwrap();
    let reference = answers_for(Strategy::SemiNaiveBottomUp, &program, &query, &db);
    assert_eq!(reference.len(), 12 * 13 / 2);
    for strategy in [Strategy::MagicSets, Strategy::SupplementaryMagicSets] {
        assert_eq!(answers_for(strategy, &program, &query, &db), reference);
    }
}
