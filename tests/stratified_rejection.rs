//! Rejection suite for guarded (negation/aggregate) programs: anything the
//! stratified semantics cannot give a meaning to must be refused with a
//! *typed* error naming the offending predicates — before any evaluation
//! touches the database.
//!
//! Three layers are exercised:
//!
//! * `Program::validate` — structural safety (unbound negated/aggregated
//!   variables, malformed aggregate heads),
//! * `Planner::plan` — stratification, for every strategy, at plan time,
//! * `Evaluator::run` — the same stratification check at the evaluation
//!   boundary (runners can be built from unvalidated programs).

use power_of_magic::engine::{EvalError, Evaluator};
use power_of_magic::lang::DatalogError;
use power_of_magic::magic::planner::PlanError;
use power_of_magic::{parse_program, parse_query, Database, Planner, Strategy};

/// Unstratifiable programs: the query, the predicate expected to be
/// reported as closing the cycle, and the full expected membership of the
/// offending SCC.
const UNSTRATIFIABLE: &[(&str, &str, &str, &[&str])] = &[
    (
        "recursive win/lose (negation through own recursion)",
        "win(X) :- move(X, Y), not win(Y).",
        "win(X)",
        &["win"],
    ),
    (
        "mutual negation",
        "p(X) :- node(X), not q(X).
         q(X) :- node(X), not p(X).",
        "p(X)",
        &["p", "q"],
    ),
    (
        "aggregate inside its own cycle",
        "t(X, sum<N>) :- t(Y, N), link(X, Y).",
        "t(X, N)",
        &["t"],
    ),
    (
        "negation on a longer cycle",
        "a(X) :- node(X), not c(X).
         b(X) :- a(X).
         c(X) :- b(X).",
        "a(X)",
        &["a", "b", "c"],
    ),
];

#[test]
fn unstratifiable_programs_are_refused_at_plan_time_by_every_strategy() {
    for &(label, src, query, cycle_members) in UNSTRATIFIABLE {
        let program = parse_program(src).unwrap_or_else(|e| panic!("{label}: parse: {e}"));
        let query = parse_query(query).unwrap();
        for strategy in Strategy::ALL {
            match Planner::new(strategy).plan(&program, &query) {
                Err(PlanError::Unstratifiable { pred, cycle }) => {
                    assert!(
                        cycle_members.contains(&pred.as_str()),
                        "{label} under {strategy}: offending pred {pred} not in {cycle_members:?}"
                    );
                    let mut got: Vec<&str> = cycle.iter().map(String::as_str).collect();
                    got.sort_unstable();
                    assert_eq!(got, *cycle_members, "{label} under {strategy}: wrong cycle");
                }
                Err(PlanError::GuardedUnsupported { .. }) => panic!(
                    "{label} under {strategy}: refused as unsupported, but the \
                     stratification violation must win (it is a property of the \
                     program, not the strategy)"
                ),
                other => panic!("{label} under {strategy}: expected Unstratifiable, got {other:?}"),
            }
        }
    }
}

#[test]
fn unstratifiable_programs_are_refused_at_the_evaluation_boundary() {
    for &(label, src, _, cycle_members) in UNSTRATIFIABLE {
        let program = parse_program(src).unwrap();
        // The engine re-checks even when handed a program the planner never
        // saw; the database must come back untouched by derivations.
        match Evaluator::new(program).run(&Database::new()) {
            Err(EvalError::Unstratifiable { predicate, cycle }) => {
                assert!(
                    cycle_members.contains(&predicate.as_str()),
                    "{label}: offending pred {predicate} not in {cycle_members:?}"
                );
                assert!(!cycle.is_empty(), "{label}: empty cycle report");
            }
            other => panic!("{label}: expected EvalError::Unstratifiable, got {other:?}"),
        }
    }
}

/// Unbound-variable rejections: rule source, expected unbound variable and
/// the negated/aggregated predicate it is reported against.
const UNSAFE: &[(&str, &str, &str, &str)] = &[
    (
        "negation with no positive body at all",
        "isolated(c0) :- not friend(X, Y).",
        "X",
        "friend",
    ),
    (
        "negated variable not bound positively",
        "odd(X) :- num(X), not pair(X, Y).",
        "Y",
        "pair",
    ),
];

#[test]
fn unbound_negated_or_aggregated_variables_are_refused_with_the_exact_names() {
    for &(label, src, variable, predicate) in UNSAFE {
        let program = parse_program(src).unwrap_or_else(|e| panic!("{label}: parse: {e}"));
        match program.validate() {
            Err(DatalogError::UnsafeNegation {
                variable: v,
                predicate: p,
                rule,
            }) => {
                assert_eq!(v, variable, "{label}: wrong variable ({rule})");
                assert_eq!(p, predicate, "{label}: wrong predicate ({rule})");
            }
            other => panic!("{label}: expected UnsafeNegation, got {other:?}"),
        }
    }
}

#[test]
fn unbound_aggregated_variables_are_refused() {
    // The aggregated variable is a head variable like any other, so an
    // unbound one is caught by the range-restriction (well-formedness)
    // check, which names it exactly.
    let program = parse_program("total(A, sum<C>) :- item(A).").unwrap();
    match program.validate() {
        Err(DatalogError::NotWellFormed { variable, rule }) => {
            assert_eq!(variable, "C", "wrong variable ({rule})");
        }
        other => panic!("expected NotWellFormed, got {other:?}"),
    }
}

#[test]
fn malformed_aggregate_heads_are_refused() {
    // An aggregate head must be defined by exactly one rule: the fold runs
    // once at the stratum boundary, so a second defining rule has no sound
    // place to land.
    let program = parse_program(
        "total(A, sum<C>) :- item(A, C).
         total(A, C) :- extra(A, C).",
    )
    .unwrap();
    match program.validate() {
        Err(DatalogError::MalformedAggregate { message, .. }) => {
            assert!(
                message.contains("total"),
                "message should name the predicate: {message}"
            );
        }
        other => panic!("expected MalformedAggregate, got {other:?}"),
    }
}

#[test]
fn stratifiable_guarded_programs_are_not_rejected() {
    // The flip side: negation one stratum down is fine everywhere the
    // policy allows it, and must never trip the unstratifiability check.
    let program = parse_program(
        "reach(X) :- start(X).
         reach(Y) :- reach(X), edge(X, Y).
         unreached(X) :- node(X), not reach(X).",
    )
    .unwrap();
    program.validate().expect("program is safe");
    let query = parse_query("unreached(X)").unwrap();
    for strategy in Strategy::ALL {
        match Planner::new(strategy).plan(&program, &query) {
            Ok(_) => {}
            Err(PlanError::GuardedUnsupported { .. }) => {} // policy, not stratification
            Err(other) => panic!("{strategy}: spurious rejection: {other}"),
        }
    }
}
