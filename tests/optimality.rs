//! Sip-optimality (Section 9, Theorem 9.1 and Lemma 9.3) and the Section 1
//! motivation, made measurable.

use power_of_magic::lang::PredName;
use power_of_magic::magic::optimality::generated_subqueries;
use power_of_magic::magic::planner::{Planner, Strategy};
use power_of_magic::magic::sip_builder::SipStrategy;
use power_of_magic::workloads::{chain, programs, random_dag, same_generation_grid, SgConfig};
use std::collections::BTreeSet;

/// Theorem 9.1 (instantiated on the ancestor chain): the magic facts are
/// exactly the subqueries a sip strategy must generate — here, one subquery
/// per node reachable from the query constant, and nothing else.
#[test]
fn magic_facts_are_exactly_the_reachable_subqueries() {
    let program = programs::ancestor();
    let db = chain(50);
    let query = programs::ancestor_query("n20");
    let result = Planner::new(Strategy::MagicSets)
        .evaluate(&program, &query, &db)
        .unwrap();
    let subqueries = generated_subqueries(&result.database);
    let expected: BTreeSet<(String, Vec<power_of_magic::lang::Value>)> = (20..=50)
        .map(|i| {
            (
                "a_bf".to_string(),
                vec![power_of_magic::lang::Value::sym(&format!("n{i}"))],
            )
        })
        .collect();
    assert_eq!(subqueries, expected);
}

/// The same property on a random DAG: the magic set equals the set of nodes
/// reachable from the query constant (computed independently).
#[test]
fn magic_set_equals_reachable_set_on_dags() {
    let program = programs::ancestor();
    let db = random_dag(60, 150, 11);
    let query = programs::ancestor_query("n3");
    let result = Planner::new(Strategy::MagicSets)
        .evaluate(&program, &query, &db)
        .unwrap();

    // Independent reachability computation over the par edges.
    let par = db.relation(&PredName::plain("par")).unwrap();
    let mut reachable: BTreeSet<String> = ["n3".to_string()].into_iter().collect();
    loop {
        let mut added = false;
        for row in par.iter() {
            if reachable.contains(&row[0].to_string()) && reachable.insert(row[1].to_string()) {
                added = true;
            }
        }
        if !added {
            break;
        }
    }
    let magic: BTreeSet<String> = generated_subqueries(&result.database)
        .into_iter()
        .map(|(_, values)| values[0].to_string())
        .collect();
    assert_eq!(magic, reachable);
}

/// Section 1 / Section 9: the baseline derives the full `anc` relation
/// (quadratic on a chain), magic derives only the part relevant to the query
/// — but still quadratically many `anc` facts for the reachable suffix,
/// which is the concession the paper makes versus specialised
/// transitive-closure methods.
#[test]
fn fact_counts_follow_the_papers_analysis() {
    let n = 60;
    let program = programs::ancestor();
    let db = chain(n);
    let query = programs::ancestor_query("n40");
    let baseline = Planner::new(Strategy::SemiNaiveBottomUp)
        .evaluate(&program, &query, &db)
        .unwrap();
    let magic = Planner::new(Strategy::MagicSets)
        .evaluate(&program, &query, &db)
        .unwrap();

    // Baseline: full transitive closure, n(n+1)/2 facts.
    assert_eq!(baseline.accounting.answer_facts, n * (n + 1) / 2);
    // Magic: only the suffix from n40 — k(k+1)/2 with k = 20 answer facts,
    // plus k+1 magic facts.
    let k = n - 40;
    assert_eq!(magic.accounting.answer_facts, k * (k + 1) / 2);
    assert_eq!(magic.accounting.subquery_facts, k + 1);
    // And the answers agree.
    assert_eq!(baseline.answers, magic.answers);
    assert_eq!(magic.answers.len(), k);
}

/// Lemma 9.3: a fuller sip computes no more facts than a sip it contains.
#[test]
fn fuller_sips_compute_no_more_facts() {
    let program = programs::same_generation();
    let query = programs::same_generation_query("l0c0");
    let db = same_generation_grid(SgConfig {
        depth: 3,
        width: 6,
        flat_everywhere: true,
    });
    for strategy in [Strategy::MagicSets, Strategy::SupplementaryMagicSets] {
        let full = Planner::new(strategy)
            .with_sip(SipStrategy::FullLeftToRight)
            .evaluate(&program, &query, &db)
            .unwrap();
        let partial = Planner::new(strategy)
            .with_sip(SipStrategy::LeftToRightLastOnly)
            .evaluate(&program, &query, &db)
            .unwrap();
        assert_eq!(full.answers, partial.answers);
        assert!(
            full.accounting.answer_facts <= partial.accounting.answer_facts,
            "{strategy}: full sip derived more answer facts than the partial sip"
        );
        assert!(
            full.accounting.subquery_facts <= partial.accounting.subquery_facts,
            "{strategy}: full sip derived more magic facts than the partial sip"
        );
    }
}

/// Section 11: the supplementary variants never fire rules more often than
/// their plain counterparts (they trade storage for duplicate work), and the
/// magic facts are a small fraction of all derived facts.
#[test]
fn supplementary_variants_reduce_duplicate_firings() {
    let program = programs::same_generation();
    let query = programs::same_generation_query("l0c0");
    let db = same_generation_grid(SgConfig {
        depth: 3,
        width: 8,
        flat_everywhere: true,
    });
    let gms = Planner::new(Strategy::MagicSets)
        .evaluate(&program, &query, &db)
        .unwrap();
    let gsms = Planner::new(Strategy::SupplementaryMagicSets)
        .evaluate(&program, &query, &db)
        .unwrap();
    assert_eq!(gms.answers, gsms.answers);
    assert!(gsms.stats.duplicate_derivations <= gms.stats.duplicate_derivations);
    assert!(gsms.accounting.supplementary_facts > 0);
    assert_eq!(gms.accounting.supplementary_facts, 0);
    // Magic facts are a minority of the derived facts on this workload.
    let fraction = gms.accounting.subquery_fraction().unwrap();
    assert!(
        fraction < 0.5,
        "magic fraction unexpectedly high: {fraction}"
    );
}

/// Counting refines magic: projecting out the index fields of the counting
/// answers yields exactly the magic answers (the remark at the start of
/// Section 6).
#[test]
fn counting_answers_project_to_magic_answers() {
    let program = programs::ancestor();
    let db = chain(30);
    let query = programs::ancestor_query("n10");
    let magic = Planner::new(Strategy::MagicSets)
        .evaluate(&program, &query, &db)
        .unwrap();
    for strategy in [
        Strategy::Counting,
        Strategy::SupplementaryCounting,
        Strategy::CountingSemijoin,
        Strategy::SupplementaryCountingSemijoin,
    ] {
        let counting = Planner::new(strategy)
            .evaluate(&program, &query, &db)
            .unwrap();
        assert_eq!(counting.answers, magic.answers, "{strategy}");
    }
}
