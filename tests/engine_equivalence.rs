//! Equivalence suite for the slot-compiled join machine.
//!
//! The engine's naive and semi-naive schemes both run on the slot-compiled
//! path (`RulePlan` + frame/trail join); as an independent oracle this file
//! carries a deliberately naive reference evaluator built directly on the
//! map-based `Bindings` API (`Atom::match_row` / `Atom::eval`), touching
//! none of the plan, frame or index machinery.  On randomized chain, tree
//! and grid databases all three must derive exactly the same fact sets.
//!
//! A probe-count regression test pins `EvalStats::join_probes` on
//! `ancestor_chain(64)`, so accidental regressions of the delta-window
//! slicing or the key-extraction logic fail loudly rather than just slowly.

use power_of_magic::engine::{EvalStats, Evaluator, IterationScheme};
use power_of_magic::lang::{parse_program, Bindings, Fact, PredName, Program};
use power_of_magic::workloads::{
    binary_tree, chain, programs, random_dag, same_generation_grid, SgConfig, SplitMix64,
};
use power_of_magic::Database;
use std::collections::BTreeSet;

/// Reference oracle: naive fixpoint evaluation with map-based bindings and
/// no indexes, no deltas, no slot compilation.
fn oracle_fixpoint(program: &Program, edb: &Database) -> BTreeSet<String> {
    let mut db = edb.clone();
    loop {
        let mut new_facts: Vec<Fact> = Vec::new();
        for rule in &program.rules {
            let mut envs: Vec<Bindings> = vec![Bindings::new()];
            for atom in &rule.body {
                let mut next: Vec<Bindings> = Vec::new();
                if let Some(rel) = db.relation(&atom.pred) {
                    for env in &envs {
                        for row in rel.iter() {
                            if row.len() != atom.arity() {
                                continue;
                            }
                            let mut candidate = env.clone();
                            if atom.match_row(&row, &mut candidate) {
                                next.push(candidate);
                            }
                        }
                    }
                }
                envs = next;
                if envs.is_empty() {
                    break;
                }
            }
            for env in &envs {
                if let Some(fact) = rule.head.eval(env) {
                    if !db.contains(&fact) {
                        new_facts.push(fact);
                    }
                }
            }
        }
        let mut changed = false;
        for fact in new_facts {
            changed |= db.insert_fact(&fact);
        }
        if !changed {
            return fact_set(&db);
        }
    }
}

fn fact_set(db: &Database) -> BTreeSet<String> {
    db.facts().map(|f| f.to_string()).collect()
}

fn engine_fixpoint(program: &Program, edb: &Database, scheme: IterationScheme) -> BTreeSet<String> {
    let result = Evaluator::new(program.clone())
        .with_scheme(scheme)
        .run(edb)
        .expect("engine evaluation succeeds");
    fact_set(&result.database)
}

fn assert_all_agree(name: &str, program: &Program, edb: &Database) {
    let expected = oracle_fixpoint(program, edb);
    assert!(!expected.is_empty(), "{name}: oracle derived nothing");
    let naive = engine_fixpoint(program, edb, IterationScheme::Naive);
    let semi = engine_fixpoint(program, edb, IterationScheme::SemiNaive);
    assert_eq!(naive, expected, "{name}: naive slot engine != oracle");
    assert_eq!(semi, expected, "{name}: semi-naive slot engine != oracle");
}

#[test]
fn slot_engine_matches_oracle_on_random_chains() {
    let mut rng = SplitMix64::seed_from_u64(0x0C4A);
    let program = programs::ancestor();
    for _ in 0..8 {
        let n = rng.random_range(1..24);
        assert_all_agree(&format!("chain({n})"), &program, &chain(n));
    }
}

#[test]
fn slot_engine_matches_oracle_on_random_trees() {
    let mut rng = SplitMix64::seed_from_u64(0x17EE);
    let program = programs::ancestor();
    for _ in 0..6 {
        let depth = rng.random_range(1..5);
        assert_all_agree(&format!("tree({depth})"), &program, &binary_tree(depth));
    }
}

#[test]
fn slot_engine_matches_oracle_on_random_dags() {
    let mut rng = SplitMix64::seed_from_u64(0xDA65);
    let program = programs::ancestor();
    for _ in 0..6 {
        let nodes = rng.random_range(4..16);
        let seed = rng.next_u64();
        let db = random_dag(nodes, nodes * 2, seed);
        assert_all_agree(&format!("dag({nodes}, seed {seed})"), &program, &db);
    }
}

#[test]
fn slot_engine_matches_oracle_on_random_grids() {
    let mut rng = SplitMix64::seed_from_u64(0x96D5);
    let program = programs::same_generation();
    for _ in 0..5 {
        let cfg = SgConfig {
            depth: rng.random_range(1..4),
            width: rng.random_range(2..5),
            flat_everywhere: true,
        };
        let db = same_generation_grid(cfg);
        assert_all_agree(&format!("grid({}x{})", cfg.depth, cfg.width), &program, &db);
    }
}

#[test]
fn slot_engine_handles_function_symbols_like_the_oracle() {
    // Exercise App terms and check-term unwinding through the slot matcher.
    let program = parse_program(
        "len(nil, zero).
         len(cons(H, T), s(N)) :- list(cons(H, T)), len(T, N).
         list(T) :- list(cons(H, T)).",
    )
    .unwrap();
    // parse_program may treat the ground rule as a fact-free rule set; feed
    // the base fact through the database instead if needed.
    let mut db = Database::new();
    let list = power_of_magic::lang::Value::list(vec![
        power_of_magic::lang::Value::sym("a"),
        power_of_magic::lang::Value::sym("b"),
        power_of_magic::lang::Value::sym("c"),
    ]);
    db.insert(PredName::plain("list"), vec![list]);
    let expected = oracle_fixpoint(&program, &db);
    let semi = engine_fixpoint(&program, &db, IterationScheme::SemiNaive);
    assert_eq!(semi, expected);
    assert!(semi
        .iter()
        .any(|f| f.contains("len([a, b, c], s(s(s(zero))))")));
}

/// Count probes for `ancestor_chain(64)` under a scheme.
fn chain64_stats(scheme: IterationScheme) -> EvalStats {
    let program = programs::ancestor();
    let db = chain(64);
    Evaluator::new(program)
        .with_scheme(scheme)
        .run(&db)
        .expect("evaluation succeeds")
        .stats
}

#[test]
fn join_probe_counts_are_pinned_on_ancestor_chain_64() {
    // These constants pin the engine's join work on a fixed workload.  If a
    // change regresses the access-path selection, the delta-window slicing
    // or the semi-naive restriction, the probe count will move and this
    // test will fail loudly.  If your change *improves* the counts, update
    // the constants (and BENCH_PR1.json) deliberately.
    let semi = chain64_stats(IterationScheme::SemiNaive);
    assert_eq!(semi.iterations, 65);
    assert_eq!(semi.facts_derived, 64 * 65 / 2);
    assert_eq!(semi.duplicate_derivations, 0);
    // 65 iterations x 64 par-scan probes, plus one delta probe per
    // successful derivation (64*65/2 = 2080): 4160 + 2080 = 6240.
    assert_eq!(
        semi.join_probes, 6240,
        "semi-naive join probes moved on ancestor_chain(64)"
    );

    let naive = chain64_stats(IterationScheme::Naive);
    assert_eq!(naive.facts_derived, 64 * 65 / 2);
    // Naive re-derivation does an order of magnitude more join work
    // (95_680 probes at the time of writing, vs 6_240 semi-naive).
    assert!(
        naive.join_probes > semi.join_probes * 10,
        "naive evaluation should do far more join work than semi-naive \
         (naive {} vs semi-naive {})",
        naive.join_probes,
        semi.join_probes
    );
}
