//! Safety, end to end (Section 10): the static verdicts and the runtime
//! behaviour they predict.

use power_of_magic::engine::{EvalError, Limits};
use power_of_magic::magic::adorn::adorn;
use power_of_magic::magic::planner::{PlanError, Planner, Strategy};
use power_of_magic::magic::safety::{
    analyze, counting_safety, magic_safety, CountingSafety, MagicSafety,
};
use power_of_magic::magic::sip_builder::SipStrategy;
use power_of_magic::workloads::{
    chain, cycle, list_term, nested_sg_extras, programs, same_generation_grid, SgConfig,
};

fn strict() -> Limits {
    Limits::strict()
}

#[test]
fn theorem_10_2_magic_is_safe_on_cyclic_datalog_data() {
    // Magic sets terminate on cyclic data; every node on the cycle is an
    // ancestor of every node (including itself).
    let program = programs::ancestor();
    let db = cycle(15);
    let query = programs::ancestor_query("n0");
    let result = Planner::new(Strategy::MagicSets)
        .with_limits(strict())
        .evaluate(&program, &query, &db)
        .expect("magic sets terminate on cyclic data");
    assert_eq!(result.answers.len(), 15);
    let gsms = Planner::new(Strategy::SupplementaryMagicSets)
        .with_limits(strict())
        .evaluate(&program, &query, &db)
        .expect("supplementary magic sets terminate on cyclic data");
    assert_eq!(gsms.answers, result.answers);
}

#[test]
fn counting_diverges_on_cyclic_data() {
    // The well-known failure mode: the counting indexes grow forever around
    // the cycle.  The engine's limits turn the divergence into an error.
    let program = programs::ancestor();
    let db = cycle(8);
    let query = programs::ancestor_query("n0");
    for strategy in [Strategy::Counting, Strategy::SupplementaryCounting] {
        let err = Planner::new(strategy)
            .with_limits(strict())
            .evaluate(&program, &query, &db)
            .unwrap_err();
        assert!(
            matches!(
                err,
                PlanError::Eval(EvalError::FactLimit { .. })
                    | PlanError::Eval(EvalError::IterationLimit { .. })
            ),
            "{strategy}: expected a resource-limit error, got {err}"
        );
    }
}

#[test]
fn theorem_10_3_nonlinear_ancestor_counting_diverges_even_on_acyclic_data() {
    let program = programs::nonlinear_ancestor();
    let query = programs::ancestor_query("n0");
    let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
    // Predicted statically...
    assert_eq!(counting_safety(&adorned), CountingSafety::NonTerminating);
    // ...and enforced by the planner's cycle-detecting pre-check: the
    // schedule's SCC pass finds the recursion through counting-indexed
    // predicates and the plan is refused up front with the typed error —
    // no run-time limit is ever hit.
    let err = Planner::new(Strategy::Counting)
        .with_limits(strict())
        .evaluate(&program, &query, &chain(10))
        .unwrap_err();
    assert!(
        matches!(err, PlanError::CountingUnsafe { .. }),
        "expected the typed pre-check refusal, got {err}"
    );
    // Magic sets handle the same program without trouble.
    let ok = Planner::new(Strategy::MagicSets)
        .with_limits(strict())
        .evaluate(&program, &query, &chain(10))
        .unwrap();
    assert_eq!(ok.answers.len(), 10);
}

#[test]
fn data_dependent_counting_divergence_on_nested_same_generation() {
    // The nested same-generation workload has a cyclic same-generation
    // relation per level, so counting diverges even though the static
    // argument graph is acyclic — exactly the distinction the paper draws
    // between Theorem 10.3 (program-level) and cyclic-data divergence.
    let program = programs::nested_same_generation();
    let query = programs::nested_sg_query("l0c0");
    let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
    assert_eq!(counting_safety(&adorned), CountingSafety::MayTerminate);

    let cfg = SgConfig {
        depth: 2,
        width: 4,
        flat_everywhere: true,
    };
    let mut db = same_generation_grid(cfg);
    nested_sg_extras(cfg, &mut db);
    let err = Planner::new(Strategy::Counting)
        .with_limits(strict())
        .evaluate(&program, &query, &db)
        .unwrap_err();
    assert!(matches!(err, PlanError::Eval(_)));
    // Magic sets are fine on the same data.
    assert!(Planner::new(Strategy::MagicSets)
        .with_limits(strict())
        .evaluate(&program, &query, &db)
        .is_ok());
}

#[test]
fn theorem_10_1_reverse_is_statically_safe_and_terminates() {
    let program = programs::list_reverse();
    let query = programs::reverse_query(list_term(8));
    let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
    assert_eq!(magic_safety(&adorned), MagicSafety::SafePositiveCycles);
    assert_eq!(counting_safety(&adorned), CountingSafety::MayTerminate);
    for strategy in Strategy::REWRITES {
        // Default limits: the point here is that evaluation terminates on its
        // own, as Theorem 10.1 predicts.
        let result = Planner::new(strategy)
            .evaluate(
                &program,
                &query,
                &power_of_magic::workloads::reverse_database(),
            )
            .unwrap();
        assert_eq!(result.answers.len(), 1, "{strategy}");
    }
}

#[test]
fn unrewritten_reverse_is_rejected_as_not_range_restricted() {
    let program = programs::list_reverse();
    let query = programs::reverse_query(list_term(4));
    let err = Planner::new(Strategy::SemiNaiveBottomUp)
        .evaluate(
            &program,
            &query,
            &power_of_magic::workloads::reverse_database(),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        PlanError::Eval(EvalError::NotRangeRestricted { .. })
    ));
}

#[test]
fn growing_recursion_is_flagged_and_diverges() {
    // A program whose bound argument grows through the recursion: statically
    // "unknown", and the magic rewrite really does diverge (caught by the
    // limits).
    let program = power_of_magic::parse_program(
        "grow(X, Y) :- base(X, Y).
         grow(X, Y) :- grow([a | X], Y).",
    )
    .unwrap();
    let query = power_of_magic::parse_query("grow([], Y)").unwrap();
    let adorned = adorn(&program, &query, SipStrategy::FullLeftToRight).unwrap();
    assert_eq!(magic_safety(&adorned), MagicSafety::Unknown);
    assert!(analyze(&adorned).to_string().contains("unknown"));

    let mut db = power_of_magic::Database::new();
    db.insert_pair("base", "x", "y");
    let err = Planner::new(Strategy::MagicSets)
        .with_limits(Limits::strict().with_max_term_depth(64))
        .evaluate(&program, &query, &db)
        .unwrap_err();
    assert!(matches!(err, PlanError::Eval(_)));
}
